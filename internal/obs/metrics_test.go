package obs

import (
	"math/rand"
	"testing"
	"time"
)

// TestHistBucketMath pins the log-linear layout: monotone bucket
// indices, lower bounds that invert bucketOf, and a relative
// quantization error bounded by one sub-bucket (12.5%).
func TestHistBucketMath(t *testing.T) {
	if got := histBucketOf(0); got != 0 {
		t.Fatalf("bucketOf(0) = %d", got)
	}
	if got := histBucketOf(-5); got != 0 {
		t.Fatalf("bucketOf(-5) = %d", got)
	}
	last := -1
	for _, v := range []int64{0, 1, 7, 8, 9, 15, 16, 17, 100, 1000, 1 << 20, 1 << 40, 1<<62 + 12345, 1<<63 - 1} {
		b := histBucketOf(v)
		if b < 0 || b >= HistBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, b)
		}
		if b < last {
			t.Fatalf("bucketOf not monotone at %d", v)
		}
		last = b
		low := BucketLow(b)
		if low > v {
			t.Fatalf("BucketLow(%d) = %d > value %d", b, low, v)
		}
		if v >= histLinear && float64(v-low)/float64(v) > 1.0/histSub {
			t.Fatalf("value %d quantized to %d: relative error > 1/%d", v, low, histSub)
		}
	}
	// Exhaustive inversion on a random sample.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		v := rng.Int63()
		b := histBucketOf(v)
		if lo, hi := BucketLow(b), BucketLow(b+1); v < lo || (b+1 < HistBuckets && v >= hi) {
			t.Fatalf("value %d outside its bucket %d [%d, %d)", v, b, lo, hi)
		}
	}
}

// TestHistQuantiles pins quantile lookup against a known distribution.
func TestHistQuantiles(t *testing.T) {
	var m Metrics
	for i := 1; i <= 100; i++ {
		m.StageEnd(StageUBF, "", int64(i)*1000) // 1µs..100µs
	}
	snap := m.Latency(StageUBF)
	if snap.Count() != 100 {
		t.Fatalf("count %d, want 100", snap.Count())
	}
	p50, p99 := snap.Quantile(0.50), snap.Quantile(0.99)
	if p50 < 40_000 || p50 > 50_000 {
		t.Fatalf("p50 = %d, want ~50µs within one sub-bucket", p50)
	}
	if p99 < 87_000 || p99 > 99_000 {
		t.Fatalf("p99 = %d, want ~99µs within one sub-bucket", p99)
	}
	if max := snap.Max(); max < 87_000 || max > 100_000 {
		t.Fatalf("max = %d, want ~100µs", max)
	}
	stats := snap.Stats()
	if stats.SumNS != 5050*1000 {
		t.Fatalf("sum = %d, want %d", stats.SumNS, 5050*1000)
	}
	if stats.P95NS < stats.P50NS || stats.P99NS < stats.P95NS || stats.MaxNS < stats.P99NS {
		t.Fatalf("quantiles not monotone: %+v", stats)
	}
	if (HistSnapshot{}).Quantile(0.99) != 0 || (HistSnapshot{}).Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

// TestMetricsHotPathZeroAllocs: the enabled always-on sink must add zero
// allocations on the record hot path — the guarantee that lets boundaryd
// leave capture on under production load.
func TestMetricsHotPathZeroAllocs(t *testing.T) {
	var m Metrics
	var o Observer = &m
	allocs := testing.AllocsPerRun(1000, func() {
		o.Count(StageUBF, CtrBallsTested, 7)
		o.Count(StageIFF, CtrMsgsSent, 3)
		o.StageEnd(StageUBF, "", 12345)
		o.RoundEnd(StageIFF, 3, RoundStats{Sent: 1})
		o.NodeTransition(StageIFF, TransIFFRescind, 3, 1)
	})
	if allocs != 0 {
		t.Fatalf("metrics hot path allocates %.1f times per run, want 0", allocs)
	}
	// The helper layer on a Metrics observer stays allocation-free too.
	allocs = testing.AllocsPerRun(1000, func() {
		Add(o, StageUBF, CtrNodesChecked, 2)
		sp := Start(o, StageGrouping)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("obs helpers over Metrics allocate %.1f times per run, want 0", allocs)
	}
}

// TestMetricsMatchesMem: Metrics and Mem fed the same event stream must
// agree on every counter total — the exactness the FTDC round-trip gate
// builds on.
func TestMetricsMatchesMem(t *testing.T) {
	var m Metrics
	mem := &Mem{}
	o := Tee(&m, mem)
	rng := rand.New(rand.NewSource(7))
	stages := []Stage{StageUBF, StageIFF, StageServe, StageIncremental}
	counters := []Counter{CtrBallsTested, CtrMsgsSent, CtrDeltas, CtrSessions}
	for i := 0; i < 500; i++ {
		s := stages[rng.Intn(len(stages))]
		Add(o, s, counters[rng.Intn(len(counters))], rng.Int63n(100)-10)
		if i%7 == 0 {
			sp := Start(o, s)
			sp.End()
		}
	}
	got, want := m.Totals(), mem.Totals()
	if len(got) != len(want) {
		t.Fatalf("counter key sets differ: metrics %d keys, mem %d keys", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("counter %s: metrics %d, mem %d", k, got[k], v)
		}
	}
	for _, s := range stages {
		if int(m.spans[s].Load()) != mem.Spans(s) {
			t.Fatalf("stage %s: span counts differ", s)
		}
	}
}

// TestMetricsSnapshotSortedNonzero: snapshots are key-sorted, skip
// zero-valued slots, and survive the clamp on unknown enum values.
func TestMetricsSnapshotSortedNonzero(t *testing.T) {
	var m Metrics
	m.Count(StageUBF, CtrBallsTested, 5)
	m.Count(StageUBF, CtrNodesChecked, 0) // zero delta recorded is still zero total
	m.Count(Stage(250), Counter(250), 3)  // clamps to slot 0, never surfaces
	m.StageEnd(StageServe, "GET /v1/metrics", 999)
	m.RoundEnd(StageIFF, 0, RoundStats{})
	m.NodeTransition(StageIFF, TransIFFRescind, 1, 0)
	m.NodeTransition(StageIFF, Transition(99), 1, 0)

	doc := m.Snapshot(nil)
	if len(doc) == 0 {
		t.Fatal("empty snapshot")
	}
	keys := map[string]int64{}
	for i, mt := range doc {
		if mt.Value == 0 {
			t.Fatalf("zero-valued metric %q in snapshot", mt.Key)
		}
		if i > 0 && doc[i-1].Key >= mt.Key {
			t.Fatalf("snapshot not strictly sorted at %q", mt.Key)
		}
		keys[mt.Key] = mt.Value
	}
	for _, want := range []string{"ctr/ubf/balls_tested", "lat/serve/sum", "spans/serve", "rounds/iff", "trans/iff_rescind"} {
		if _, ok := keys[want]; !ok {
			t.Fatalf("snapshot missing %q (have %v)", want, keys)
		}
	}
	if keys["ctr/ubf/balls_tested"] != 5 {
		t.Fatalf("balls_tested = %d", keys["ctr/ubf/balls_tested"])
	}
	// Reusing the buffer must not leak prior entries.
	doc2 := m.Snapshot(doc[:0])
	if len(doc2) != len(doc) {
		t.Fatalf("snapshot reuse changed length: %d vs %d", len(doc2), len(doc))
	}
}

// TestMetricsConcurrentRecord: racing writers against a reader is safe
// and loses nothing once quiesced (run under -race in CI).
func TestMetricsConcurrentRecord(t *testing.T) {
	var m Metrics
	const workers, per = 8, 1000
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				m.Snapshot(nil)
				m.LatencySummaries()
			}
		}
	}()
	var wg chan struct{} = make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for i := 0; i < per; i++ {
				m.Count(StageUBF, CtrBallsTested, 1)
				m.StageEnd(StageUBF, "", int64(i))
			}
			wg <- struct{}{}
		}()
	}
	for w := 0; w < workers; w++ {
		select {
		case <-wg:
		case <-time.After(30 * time.Second):
			t.Fatal("timeout")
		}
	}
	close(done)
	if got := m.Total(StageUBF, CtrBallsTested); got != workers*per {
		t.Fatalf("lost updates: %d, want %d", got, workers*per)
	}
	if got := m.Latency(StageUBF).Count(); got != workers*per {
		t.Fatalf("lost spans: %d, want %d", got, workers*per)
	}
}
