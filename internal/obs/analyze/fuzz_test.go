package analyze

import (
	"bytes"
	"testing"
)

// FuzzLoadDiff feeds arbitrary bytes through the trace-diff pipeline:
// Load must reject garbage with an error, never a panic, and whatever
// pair of traces does parse must survive every downstream analysis —
// convergence, anomaly scan, and the diff at several tolerance settings.
func FuzzLoadDiff(f *testing.F) {
	f.Add([]byte(""), []byte(""))
	f.Add(
		[]byte(`{"ev":"round_begin","stage":"iff","round":0,"seq":0,"ts_ns":1}`+"\n"+
			`{"ev":"round_end","stage":"iff","round":0,"stats":{"sent":2,"delivered":2,"dropped":0,"duplicated":0,"delayed":0,"active":3},"seq":1,"ts_ns":2}`+"\n"),
		[]byte(`{"ev":"count","stage":"iff","counter":"msgs_sent","value":5,"seq":0,"ts_ns":1}`+"\n"),
	)
	f.Add(
		[]byte(`{"ev":"trans","stage":"iff","trans":"iff_rescind","node":3,"value":2,"seq":0,"ts_ns":0}`+"\n"),
		[]byte(`{"ev":"begin","stage":"detect","seq":0,"ts_ns":0}`+"\n"+
			`{"ev":"end","stage":"detect","wall_ns":10,"seq":1,"ts_ns":9}`+"\n"),
	)
	f.Fuzz(func(t *testing.T, a, b []byte) {
		ta, errA := Load(bytes.NewReader(a))
		tb, errB := Load(bytes.NewReader(b))
		if errA != nil || errB != nil {
			return
		}
		Convergence(ta.Events)
		FindAnomalies(ta)
		FindAnomalies(tb)
		for _, tol := range []Tolerances{
			{},
			{CounterFrac: 0.5, RoundSlack: 3, WallFrac: 0.5},
			{WallFrac: -1},
		} {
			rep := DiffTraces(ta.Summary, tb.Summary, tol)
			for _, fd := range rep.Findings {
				if fd.Metric == "" {
					t.Fatalf("finding with empty metric: %+v", fd)
				}
			}
		}
	})
}
