package analyze

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/sim"
)

// recordTrace runs label propagation on a small path under a JSONL
// recorder and loads the result back — a real end-to-end trace for the
// analytics to chew on.
func recordTrace(t *testing.T) *Trace {
	t.Helper()
	g := graph.New(5)
	for i := 0; i+1 < 5; i++ {
		g.AddEdge(i, i+1)
	}
	member := make([]bool, 5)
	for i := range member {
		member[i] = true
	}
	var buf bytes.Buffer
	j := obs.NewJSONL(&buf)
	span := obs.Start(j, obs.StageDetect)
	if _, _, err := sim.LabelComponentsStats(g, member, sim.Probe{Obs: j, Stage: obs.StageGrouping}); err != nil {
		t.Fatal(err)
	}
	span.End()
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	tr, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestConvergenceFromRealTrace(t *testing.T) {
	tr := recordTrace(t)
	curves := Convergence(tr.Events)
	if len(curves) != 1 || curves[0].Stage != obs.StageGrouping.String() {
		t.Fatalf("curves = %+v, want one grouping curve", curves)
	}
	pts := curves[0].Points
	if len(pts) == 0 {
		t.Fatal("empty curve")
	}
	if pts[0].Round != obs.InitRound {
		t.Errorf("first point round = %d, want init round %d", pts[0].Round, obs.InitRound)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Round <= pts[i-1].Round {
			t.Errorf("rounds not ascending: %d after %d", pts[i].Round, pts[i-1].Round)
		}
	}
	var sent, delivered int64
	for _, p := range pts {
		sent += p.Stats.Sent
		delivered += p.Stats.Delivered
	}
	if sent == 0 || sent != delivered {
		t.Errorf("curve totals sent=%d delivered=%d, want equal and nonzero", sent, delivered)
	}
}

func TestConvergenceSumsDuplicateRounds(t *testing.T) {
	mk := func(round int, sent int64) obs.TraceEvent {
		return obs.TraceEvent{Event: obs.Event{
			Kind: obs.KindRoundEnd, Stage: obs.StageIFF, Round: round,
			Stats: obs.RoundStats{Sent: sent},
		}}
	}
	curves := Convergence([]obs.TraceEvent{mk(0, 2), mk(1, 5), mk(0, 3)})
	if len(curves) != 1 || len(curves[0].Points) != 2 {
		t.Fatalf("curves = %+v", curves)
	}
	if got := curves[0].Points[0].Stats.Sent; got != 5 {
		t.Errorf("round 0 summed sent = %d, want 5", got)
	}
}

func TestFindAnomaliesCleanTrace(t *testing.T) {
	tr := recordTrace(t)
	if an := FindAnomalies(tr); len(an) != 0 {
		t.Errorf("clean trace reported anomalies: %+v", an)
	}
}

func TestFindAnomaliesNonQuiescence(t *testing.T) {
	tr := &Trace{Events: []obs.TraceEvent{{Event: obs.Event{
		Kind: obs.KindRoundEnd, Stage: obs.StageIFF, Round: 0,
		Stats: obs.RoundStats{Sent: 4, Delivered: 2, Dropped: 1},
	}}}}
	an := FindAnomalies(tr)
	if len(an) != 1 || an[0].Kind != AnomalyNonQuiescence {
		t.Fatalf("anomalies = %+v, want one non_quiescence", an)
	}
	if !strings.Contains(an[0].Detail, "1 message") {
		t.Errorf("detail %q does not name the in-flight count", an[0].Detail)
	}
}

func TestFindAnomaliesRetransmitExhaustion(t *testing.T) {
	tr := &Trace{Summary: obs.TraceSummary{Counters: map[obs.Stage]map[obs.Counter]int64{
		obs.StageIFF: {obs.CtrMsgsAbandoned: 3},
	}}}
	an := FindAnomalies(tr)
	if len(an) != 1 || an[0].Kind != AnomalyRetransmitExhaustion {
		t.Fatalf("anomalies = %+v, want one retransmit_exhaustion", an)
	}
	if an[0].Stage != obs.StageIFF.String() {
		t.Errorf("anomaly stage = %q", an[0].Stage)
	}
}

func TestFindAnomaliesRescindOscillation(t *testing.T) {
	rescind := obs.TraceEvent{Event: obs.Event{
		Kind: obs.KindTransition, Stage: obs.StageIFF, Trans: obs.TransIFFRescind, Node: 7,
	}}
	claim := obs.TraceEvent{Event: obs.Event{
		Kind: obs.KindTransition, Stage: obs.StageUBF, Trans: obs.TransBoundaryClaim, Node: 7,
	}}
	freshRun := obs.TraceEvent{Event: obs.Event{Kind: obs.KindBegin, Stage: obs.StageDetect}}

	an := FindAnomalies(&Trace{Events: []obs.TraceEvent{rescind, claim}})
	if len(an) != 1 || an[0].Kind != AnomalyRescindOscillation || an[0].Node != 7 {
		t.Fatalf("anomalies = %+v, want one rescind_oscillation on node 7", an)
	}
	// A new detection run resets the slate: the same pair split across
	// runs — as in a sweep trace — is not an oscillation.
	an = FindAnomalies(&Trace{Events: []obs.TraceEvent{rescind, freshRun, claim}})
	if len(an) != 0 {
		t.Errorf("cross-run claim flagged as oscillation: %+v", an)
	}
}

func TestDiffTracesIdenticalAndDrifted(t *testing.T) {
	sum := func(msgs int64, rounds int) obs.TraceSummary {
		return obs.TraceSummary{
			Counters:    map[obs.Stage]map[obs.Counter]int64{obs.StageIFF: {obs.CtrMsgsSent: msgs}},
			Rounds:      map[obs.Stage]int{obs.StageIFF: rounds},
			Transitions: map[obs.Transition]int{obs.TransBoundaryClaim: 4},
			Wall:        map[obs.Stage]int64{obs.StageIFF: 1000},
		}
	}
	// Identical summaries diff clean even at zero tolerance, with wall
	// time ignored by default.
	rep := DiffTraces(sum(100, 7), sum(100, 7), Tolerances{WallFrac: -1})
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Fatalf("identical summaries regressed: %+v", regs)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("no findings on identical summaries — diff is vacuous")
	}
	for _, f := range rep.Findings {
		if strings.HasPrefix(f.Metric, "wall_ns/") {
			t.Errorf("wall metric %q compared despite WallFrac < 0", f.Metric)
		}
	}

	// Message drift beyond tolerance and round drift beyond slack both
	// regress; drift within tolerance passes.
	rep = DiffTraces(sum(100, 7), sum(130, 9), Tolerances{CounterFrac: 0.2, RoundSlack: 1, WallFrac: -1})
	regressed := map[string]bool{}
	for _, f := range rep.Regressions() {
		regressed[f.Metric] = true
	}
	if !regressed["iff/msgs_sent"] {
		t.Error("30% counter drift above a 20% tolerance not flagged")
	}
	if !regressed["rounds/iff"] {
		t.Error("2-round drift above a 1-round slack not flagged")
	}
	rep = DiffTraces(sum(100, 7), sum(110, 8), Tolerances{CounterFrac: 0.2, RoundSlack: 1, WallFrac: -1})
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Errorf("in-tolerance drift regressed: %+v", regs)
	}

	// Improvement is still drift for a trace diff: same workload, so
	// fewer messages means the trace describes something else.
	rep = DiffTraces(sum(100, 7), sum(60, 7), Tolerances{CounterFrac: 0.2, RoundSlack: 1, WallFrac: -1})
	if len(rep.Regressions()) == 0 {
		t.Error("symmetric counter drift (decrease) not flagged")
	}
}

func baselineWith(name string, ns float64, allocs, balls int64) *bench.Baseline {
	return &bench.Baseline{
		Name: name,
		Stages: []bench.Stage{{
			Name: "ubf", WallNS: int64(ns) * 10, Ops: 10, NSPerOp: ns,
			Allocs: allocs, BallsTested: balls,
		}},
	}
}

func TestDiffBaselinesIdenticalPasses(t *testing.T) {
	rep, err := DiffBaselines(baselineWith("a", 1000, 5, 42), baselineWith("b", 1000, 5, 42), BenchTolerances{})
	if err != nil {
		t.Fatal(err)
	}
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Errorf("identical baselines regressed: %+v", regs)
	}
}

func TestDiffBaselinesInjectedRegression(t *testing.T) {
	rep, err := DiffBaselines(baselineWith("a", 1000, 5, 42), baselineWith("b", 1500, 5, 42), DefaultBenchTolerances())
	if err != nil {
		t.Fatal(err)
	}
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Metric != "ns_per_op/ubf" {
		t.Fatalf("regressions = %+v, want ns_per_op/ubf only", regs)
	}
}

func TestDiffBaselinesImprovementPasses(t *testing.T) {
	// Timing metrics are directional: getting faster or leaner is never a
	// regression, however large the change.
	rep, err := DiffBaselines(baselineWith("a", 1000, 5, 42), baselineWith("b", 100, 1, 42), BenchTolerances{})
	if err != nil {
		t.Fatal(err)
	}
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Errorf("improvement regressed: %+v", regs)
	}
}

func TestDiffBaselinesWorkCounterDrift(t *testing.T) {
	// Work-counter drift beyond the (tight) default tolerance — even
	// downward — is a regression: the counters are deterministic up to the
	// benchmark's instance mix.
	rep, err := DiffBaselines(baselineWith("a", 1000, 5, 42), baselineWith("b", 1000, 5, 41), DefaultBenchTolerances())
	if err != nil {
		t.Fatal(err)
	}
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Metric != "balls_tested/ubf" {
		t.Fatalf("regressions = %+v, want balls_tested/ubf only", regs)
	}
}

func TestDiffBaselinesWorkCountersPerOp(t *testing.T) {
	// Counters are totals over all timed iterations; two recordings with
	// different iteration counts but identical per-op work must compare
	// equal — even at zero tolerance.
	oldB := baselineWith("a", 1000, 5, 42) // 10 ops, 4.2 balls/op
	newB := baselineWith("b", 1000, 5, 42)
	newB.Stages[0].Ops = 30
	newB.Stages[0].BallsTested = 126 // same 4.2 balls/op
	rep, err := DiffBaselines(oldB, newB, BenchTolerances{})
	if err != nil {
		t.Fatal(err)
	}
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Errorf("equal per-op work regressed: %+v", regs)
	}
}

func TestDiffBaselinesStageCoverage(t *testing.T) {
	oldB := baselineWith("a", 1000, 5, 42)
	oldB.Stages = append(oldB.Stages, bench.Stage{Name: "iff", WallNS: 100, Ops: 1, NSPerOp: 100})
	newB := baselineWith("b", 1000, 5, 42)
	newB.Stages = append(newB.Stages, bench.Stage{Name: "mds", WallNS: 100, Ops: 1, NSPerOp: 100})
	rep, err := DiffBaselines(oldB, newB, DefaultBenchTolerances())
	if err != nil {
		t.Fatal(err)
	}
	var missing, added *Finding
	for i := range rep.Findings {
		switch rep.Findings[i].Metric {
		case "stage/iff":
			missing = &rep.Findings[i]
		case "stage/mds":
			added = &rep.Findings[i]
		}
	}
	if missing == nil || !missing.Regressed {
		t.Errorf("dropped stage not flagged as regression: %+v", missing)
	}
	if added == nil || added.Regressed {
		t.Errorf("new stage should be reported but pass: %+v", added)
	}
}

func TestDiffBaselinesCrossHostRefusal(t *testing.T) {
	oldB := baselineWith("a", 1000, 5, 42)
	newB := baselineWith("b", 1000, 5, 42)
	oldB.Host = bench.Host{CPUModel: "cpu-one", NumCPU: 4, OS: "linux", Arch: "amd64"}
	newB.Host = bench.Host{CPUModel: "cpu-two", NumCPU: 8, OS: "linux", Arch: "amd64"}

	_, err := DiffBaselines(oldB, newB, BenchTolerances{})
	if !errors.Is(err, ErrCrossHost) {
		t.Fatalf("err = %v, want ErrCrossHost", err)
	}
	if !strings.Contains(err.Error(), "cpu-one") || !strings.Contains(err.Error(), "cpu-two") {
		t.Errorf("refusal %q does not name both hosts", err)
	}
	if _, err := DiffBaselines(oldB, newB, BenchTolerances{AllowCrossHost: true}); err != nil {
		t.Errorf("AllowCrossHost still refused: %v", err)
	}
	// A pre-stamping baseline (zero host) is never a mismatch.
	oldB.Host = bench.Host{}
	if _, err := DiffBaselines(oldB, newB, BenchTolerances{}); err != nil {
		t.Errorf("unrecorded host treated as mismatch: %v", err)
	}
}

func TestDefaultBenchTolerances(t *testing.T) {
	tol := DefaultBenchTolerances()
	if tol.NSFrac != 0.25 || tol.AllocFrac != 0.10 || tol.WorkFrac != 0.02 || tol.AllowCrossHost {
		t.Errorf("defaults = %+v", tol)
	}
}
