// Package analyze turns flight-recorder traces (internal/obs JSONL) and
// benchmark baselines (internal/bench) into convergence curves, anomaly
// reports, and tolerance-gated diffs — the read side of the repository's
// observability layer, behind cmd/tracestat and `make bench-diff`.
//
// The paper's correctness story is a convergence story: UBF claims must
// survive IFF's TTL-bounded flood, grouping floods must quiesce, and the
// hardened protocols must stay within their retransmit budgets. A trace
// records those dynamics round by round; this package asks the three
// questions that matter of it — did it converge (Convergence), did
// anything pathological happen (FindAnomalies), and did it change since
// last time (DiffTraces/DiffBaselines).
package analyze

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/bench"
	"repro/internal/obs"
)

// Trace is one parsed and validated JSONL trace.
type Trace struct {
	// Events holds every line in wire (seq) order.
	Events []obs.TraceEvent
	// Summary is the trace's aggregate roll-up.
	Summary obs.TraceSummary
}

// Load parses and validates a JSONL trace.
func Load(r io.Reader) (*Trace, error) {
	events, sum, err := obs.ReadTrace(r)
	if err != nil {
		return nil, err
	}
	return &Trace{Events: events, Summary: sum}, nil
}

// RoundPoint is one round of a convergence curve.
type RoundPoint struct {
	Round int            `json:"round"`
	Stats obs.RoundStats `json:"stats"`
}

// Curve is one stage's round-resolved convergence history: frontier size
// (Stats.Active) and message volume (Stats.Sent/Delivered) per round.
type Curve struct {
	Stage  string       `json:"stage"`
	Points []RoundPoint `json:"points"`
}

// Convergence folds a trace's round events into per-stage curves. Rounds
// recorded more than once under a stage (interleaved sweep cells, or a
// sync and an async leg sharing an observer) are summed. Stages follow
// the pipeline order, rounds ascend.
func Convergence(events []obs.TraceEvent) []Curve {
	type key struct {
		stage obs.Stage
		round int
	}
	acc := make(map[key]obs.RoundStats)
	stages := make(map[obs.Stage]bool)
	for _, ev := range events {
		if ev.Kind != obs.KindRoundEnd {
			continue
		}
		k := key{ev.Stage, ev.Round}
		rs := acc[k]
		rs.Add(ev.Stats)
		acc[k] = rs
		stages[ev.Stage] = true
	}
	var order []obs.Stage
	for s := range stages {
		order = append(order, s)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	curves := make([]Curve, 0, len(order))
	for _, s := range order {
		var points []RoundPoint
		for k, rs := range acc {
			if k.stage == s {
				points = append(points, RoundPoint{Round: k.round, Stats: rs})
			}
		}
		sort.Slice(points, func(i, j int) bool { return points[i].Round < points[j].Round })
		curves = append(curves, Curve{Stage: s.String(), Points: points})
	}
	return curves
}

// Anomaly kinds reported by FindAnomalies.
const (
	// AnomalyNonQuiescence: a stage's rounds ended with messages still in
	// flight — sent+duplicated exceeds delivered+dropped.
	AnomalyNonQuiescence = "non_quiescence"
	// AnomalyRetransmitExhaustion: a hardened protocol abandoned packets
	// after its retransmit budget.
	AnomalyRetransmitExhaustion = "retransmit_exhaustion"
	// AnomalyRescindOscillation: a node claimed boundary status after IFF
	// had already rescinded it within the same detection run — the
	// claim/rescind cycle the paper's one-pass pipeline should never
	// produce.
	AnomalyRescindOscillation = "rescind_oscillation"
)

// Anomaly is one detected pathology.
type Anomaly struct {
	Kind   string `json:"kind"`
	Stage  string `json:"stage,omitempty"`
	Node   int    `json:"node,omitempty"`
	Detail string `json:"detail"`
}

// FindAnomalies scans a validated trace for the three pathologies the
// flight recorder exists to expose.
func FindAnomalies(tr *Trace) []Anomaly {
	var out []Anomaly

	// Conservation per stage: at quiescence every copy presented to the
	// network (sent + injected duplicates) was delivered or dropped.
	inFlight := make(map[obs.Stage]obs.RoundStats)
	var stages []obs.Stage
	for _, ev := range tr.Events {
		if ev.Kind != obs.KindRoundEnd {
			continue
		}
		if _, seen := inFlight[ev.Stage]; !seen {
			stages = append(stages, ev.Stage)
		}
		rs := inFlight[ev.Stage]
		rs.Add(ev.Stats)
		inFlight[ev.Stage] = rs
	}
	sort.Slice(stages, func(i, j int) bool { return stages[i] < stages[j] })
	for _, s := range stages {
		rs := inFlight[s]
		if left := rs.Sent + rs.Duplicated - rs.Delivered - rs.Dropped; left > 0 {
			out = append(out, Anomaly{
				Kind:  AnomalyNonQuiescence,
				Stage: s.String(),
				Detail: fmt.Sprintf("%d message(s) still in flight after the last recorded round (sent %d + dup %d, delivered %d, dropped %d)",
					left, rs.Sent, rs.Duplicated, rs.Delivered, rs.Dropped),
			})
		}
	}

	// Budget exhaustion straight off the aggregate counters.
	for s := obs.Stage(1); ; s++ {
		if s.String() == "stage?" {
			break
		}
		if n := tr.Summary.Total(s, obs.CtrMsgsAbandoned); n > 0 {
			out = append(out, Anomaly{
				Kind:   AnomalyRetransmitExhaustion,
				Stage:  s.String(),
				Detail: fmt.Sprintf("%d packet(s) abandoned after the retransmit budget", n),
			})
		}
	}

	// Claim-after-rescind per node, scoped to one detection run: a fresh
	// StageDetect span resets the slate, so sweep traces with repeated
	// node IDs across cells don't false-positive.
	rescinded := make(map[int]bool)
	for _, ev := range tr.Events {
		switch {
		case ev.Kind == obs.KindBegin && ev.Stage == obs.StageDetect:
			clear(rescinded)
		case ev.Kind != obs.KindTransition:
		case ev.Trans == obs.TransIFFRescind:
			rescinded[ev.Node] = true
		case ev.Trans == obs.TransBoundaryClaim && rescinded[ev.Node]:
			out = append(out, Anomaly{
				Kind:   AnomalyRescindOscillation,
				Stage:  ev.Stage.String(),
				Node:   ev.Node,
				Detail: fmt.Sprintf("node %d re-claimed boundary status after an IFF rescind in the same detection run", ev.Node),
			})
		}
	}
	return out
}

// Finding is one compared metric in a diff report.
type Finding struct {
	// Metric names what was compared ("iff/msgs_sent", "rounds/grouping",
	// "ns_per_op/ubf", ...).
	Metric string `json:"metric"`
	// Old and New are the two sides' values; Delta is New-Old.
	Old   float64 `json:"old"`
	New   float64 `json:"new"`
	Delta float64 `json:"delta"`
	// Allowed is the tolerance the delta was judged against, in the
	// metric's unit (absolute for rounds, fractional otherwise).
	Allowed float64 `json:"allowed"`
	// Regressed marks findings outside tolerance.
	Regressed bool `json:"regressed"`
	// Note carries context ("stage missing in new baseline").
	Note string `json:"note,omitempty"`
}

// Report is a diff's full finding list, regressions and passes alike.
type Report struct {
	Findings []Finding `json:"findings"`
}

// Regressions filters the report to out-of-tolerance findings.
func (r Report) Regressions() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Regressed {
			out = append(out, f)
		}
	}
	return out
}

// Tolerances bounds acceptable drift between two traces.
type Tolerances struct {
	// CounterFrac is the allowed fractional change of every (stage,
	// counter) total and transition tally. Zero demands exact equality.
	CounterFrac float64
	// RoundSlack is the allowed absolute change in per-stage round
	// counts.
	RoundSlack int
	// WallFrac is the allowed fractional change of per-stage wall time.
	// Negative disables wall comparison — the right default when the two
	// traces come from different machines or load conditions.
	WallFrac float64
}

// fracDelta measures a change relative to the old magnitude, with a floor
// of 1 so a 0→small drift doesn't divide by zero.
func fracDelta(oldV, newV float64) float64 {
	base := math.Abs(oldV)
	if base < 1 {
		base = 1
	}
	return math.Abs(newV-oldV) / base
}

// DiffTraces compares two trace summaries metric by metric: counter
// totals and transition tallies under CounterFrac, per-stage round counts
// under RoundSlack, per-stage wall time under WallFrac. Any drift beyond
// tolerance — in either direction — is a regression: the traces are
// expected to describe the same workload.
func DiffTraces(a, b obs.TraceSummary, tol Tolerances) Report {
	var rep Report

	counterKeys := make(map[string][2]float64) // metric -> old, new
	var order []string
	note := func(metric string, oldV, newV float64) {
		if _, seen := counterKeys[metric]; !seen {
			order = append(order, metric)
		}
		v := counterKeys[metric]
		v[0] += oldV
		v[1] += newV
		counterKeys[metric] = v
	}
	for s, m := range a.Counters {
		for c, v := range m {
			note(s.String()+"/"+c.String(), float64(v), 0)
		}
	}
	for s, m := range b.Counters {
		for c, v := range m {
			note(s.String()+"/"+c.String(), 0, float64(v))
		}
	}
	for t, n := range a.Transitions {
		note("trans/"+t.String(), float64(n), 0)
	}
	for t, n := range b.Transitions {
		note("trans/"+t.String(), 0, float64(n))
	}
	sort.Strings(order)
	for _, metric := range order {
		v := counterKeys[metric]
		rep.Findings = append(rep.Findings, Finding{
			Metric: metric, Old: v[0], New: v[1], Delta: v[1] - v[0],
			Allowed:   tol.CounterFrac,
			Regressed: fracDelta(v[0], v[1]) > tol.CounterFrac,
		})
	}

	roundStages := make(map[obs.Stage]bool)
	for s := range a.Rounds {
		roundStages[s] = true
	}
	for s := range b.Rounds {
		roundStages[s] = true
	}
	var rs []obs.Stage
	for s := range roundStages {
		rs = append(rs, s)
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
	for _, s := range rs {
		oldV, newV := float64(a.Rounds[s]), float64(b.Rounds[s])
		rep.Findings = append(rep.Findings, Finding{
			Metric: "rounds/" + s.String(), Old: oldV, New: newV, Delta: newV - oldV,
			Allowed:   float64(tol.RoundSlack),
			Regressed: math.Abs(newV-oldV) > float64(tol.RoundSlack),
		})
	}

	if tol.WallFrac >= 0 {
		wallStages := make(map[obs.Stage]bool)
		for s := range a.Wall {
			wallStages[s] = true
		}
		for s := range b.Wall {
			wallStages[s] = true
		}
		var ws []obs.Stage
		for s := range wallStages {
			ws = append(ws, s)
		}
		sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
		for _, s := range ws {
			oldV, newV := float64(a.Wall[s]), float64(b.Wall[s])
			rep.Findings = append(rep.Findings, Finding{
				Metric: "wall_ns/" + s.String(), Old: oldV, New: newV, Delta: newV - oldV,
				Allowed:   tol.WallFrac,
				Regressed: fracDelta(oldV, newV) > tol.WallFrac,
			})
		}
	}
	return rep
}

// BenchTolerances bounds acceptable drift between two bench baselines.
type BenchTolerances struct {
	// NSFrac is the allowed fractional ns/op increase per stage.
	NSFrac float64
	// AllocFrac is the allowed fractional allocs/op increase per stage.
	AllocFrac float64
	// WorkFrac is the allowed fractional change of the deterministic work
	// counters (balls tested, nodes checked). Zero demands exactness.
	WorkFrac float64
	// AllowCrossHost permits comparing baselines recorded on different
	// machines (the numbers are then only weakly meaningful).
	AllowCrossHost bool
}

// DefaultBenchTolerances matches the `make bench-diff` gate: 25% wall
// slack for a noisy single run, 10% alloc slack, and 2% per-op drift on
// the work counters (cases that average over a pool of pre-generated
// instances see a different instance mix when the iteration count is not
// a pool multiple, and numeric-substrate changes move the counters at
// rounding level).
func DefaultBenchTolerances() BenchTolerances {
	return BenchTolerances{NSFrac: 0.25, AllocFrac: 0.10, WorkFrac: 0.02}
}

// ErrCrossHost is the refusal DiffBaselines returns (wrapped with both
// host strings) when the baselines were measured on different machines.
var ErrCrossHost = fmt.Errorf("analyze: baselines were measured on different hosts")

// DiffBaselines compares two bench baselines stage by stage. Timing
// metrics (ns/op, allocs/op) regress only when they increase beyond
// tolerance — getting faster passes; the deterministic work counters
// regress on any drift beyond WorkFrac. A stage present in old but
// missing in new is a regression (coverage was lost); a brand-new stage
// is reported but passes. Baselines recorded on different hosts are
// refused unless AllowCrossHost is set; baselines without host metadata
// (written before host stamping) are compared without the check.
func DiffBaselines(oldB, newB *bench.Baseline, tol BenchTolerances) (Report, error) {
	var rep Report
	if !tol.AllowCrossHost && !oldB.Host.IsZero() && !newB.Host.IsZero() && !oldB.Host.Equal(newB.Host) {
		return rep, fmt.Errorf("%w: %q (%s) vs %q (%s); rerun on one machine or pass -allow-cross-host",
			ErrCrossHost, oldB.Name, oldB.Host, newB.Name, newB.Host)
	}

	newStages := make(map[string]bench.Stage, len(newB.Stages))
	for _, s := range newB.Stages {
		newStages[s.Name] = s
	}
	seen := make(map[string]bool, len(oldB.Stages))
	directional := func(stage, metric string, oldV, newV, frac float64) Finding {
		return Finding{
			Metric: metric + "/" + stage, Old: oldV, New: newV, Delta: newV - oldV,
			Allowed:   frac,
			Regressed: newV > oldV && fracDelta(oldV, newV) > frac,
		}
	}
	for _, o := range oldB.Stages {
		seen[o.Name] = true
		n, ok := newStages[o.Name]
		if !ok {
			rep.Findings = append(rep.Findings, Finding{
				Metric: "stage/" + o.Name, Old: 1, New: 0, Delta: -1,
				Regressed: true, Note: "stage missing in new baseline",
			})
			continue
		}
		rep.Findings = append(rep.Findings, directional(o.Name, "ns_per_op", o.NSPerOp, n.NSPerOp, tol.NSFrac))
		if o.Allocs != 0 || n.Allocs != 0 {
			rep.Findings = append(rep.Findings, directional(o.Name, "allocs_per_op", float64(o.Allocs), float64(n.Allocs), tol.AllocFrac))
		}
		for _, w := range []struct {
			metric     string
			oldV, newV int64
		}{
			{"balls_tested", o.BallsTested, n.BallsTested},
			{"nodes_checked", o.NodesChecked, n.NodesChecked},
		} {
			if w.oldV == 0 && w.newV == 0 {
				continue
			}
			// Work counters are totals accumulated over every timed
			// iteration, and the two recordings rarely agree on the
			// iteration count — compare per-op averages, not raw sums.
			oldV, newV := float64(w.oldV), float64(w.newV)
			if o.Ops > 0 {
				oldV /= float64(o.Ops)
			}
			if n.Ops > 0 {
				newV /= float64(n.Ops)
			}
			rep.Findings = append(rep.Findings, Finding{
				Metric: w.metric + "/" + o.Name, Old: oldV, New: newV, Delta: newV - oldV,
				Allowed:   tol.WorkFrac,
				Regressed: fracDelta(oldV, newV) > tol.WorkFrac,
			})
		}
	}
	var added []string
	for name := range newStages {
		if !seen[name] {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		rep.Findings = append(rep.Findings, Finding{
			Metric: "stage/" + name, Old: 0, New: 1, Delta: 1,
			Note: "new stage (no old measurement)",
		})
	}
	return rep, nil
}
