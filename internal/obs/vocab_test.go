package obs

import (
	"strings"
	"testing"
)

// paperStages is the paper pipeline's declared vocabulary, spelled out
// here rather than imported from core (obs cannot depend on core).
var paperStages = []Stage{StageDetect, StageFrames, StageUBF, StageIFF, StageGrouping}

// TestValidateTraceVocabRejects is the regression test for the PR-8
// vocabulary contract: ValidateTrace accepts any known stage/counter
// spelling, so a detector counting under a detector-owned stage it never
// declared — "candidates" under the paper vocabulary — used to pass
// validation silently. ValidateTraceVocab must refuse it.
func TestValidateTraceVocabRejects(t *testing.T) {
	trace := `{"ev":"count","stage":"candidates","counter":"local_tests","value":3,"seq":0,"ts_ns":1}` + "\n"

	// The plain validator accepts the spelling — that is the hole.
	if _, err := ValidateTrace(strings.NewReader(trace)); err != nil {
		t.Fatalf("ValidateTrace must accept a well-formed candidates counter: %v", err)
	}
	// The vocabulary-aware validator closes it.
	if _, err := ValidateTraceVocab(strings.NewReader(trace), paperStages); err == nil {
		t.Fatal("counter under an undeclared detector-owned stage passed the vocabulary check")
	} else if !strings.Contains(err.Error(), "candidates") {
		t.Fatalf("diagnostic does not name the offending stage: %v", err)
	}

	// Undeclared spans and rounds under detector-owned stages fail too.
	span := `{"ev":"begin","stage":"candidates","seq":0,"ts_ns":1}` + "\n" +
		`{"ev":"end","stage":"candidates","wall_ns":5,"seq":1,"ts_ns":2}` + "\n"
	if _, err := ValidateTraceVocab(strings.NewReader(span), paperStages); err == nil {
		t.Fatal("span under an undeclared detector-owned stage passed")
	}
	round := `{"ev":"round_begin","stage":"candidates","round":0,"seq":0,"ts_ns":1}` + "\n" +
		`{"ev":"round_end","stage":"candidates","round":0,"stats":{"sent":0,"delivered":0,"dropped":0,"duplicated":0,"delayed":0,"active":0},"seq":1,"ts_ns":2}` + "\n"
	if _, err := ValidateTraceVocab(strings.NewReader(round), paperStages); err == nil {
		t.Fatal("round under an undeclared detector-owned stage passed")
	}
}

// TestValidateTraceVocabAccepts: declared detector stages and shared
// infrastructure stages (serve, cell, incremental) stay admissible — the
// contract scopes only the detector-owned stages.
func TestValidateTraceVocabAccepts(t *testing.T) {
	trace := `{"ev":"count","stage":"ubf","counter":"balls_tested","value":7,"seq":0,"ts_ns":1}` + "\n" +
		`{"ev":"begin","stage":"serve","seq":1,"ts_ns":2}` + "\n" +
		`{"ev":"end","stage":"serve","wall_ns":5,"seq":2,"ts_ns":3}` + "\n" +
		`{"ev":"count","stage":"incremental","counter":"dirty_ubf_nodes","value":2,"seq":3,"ts_ns":4}` + "\n"
	sum, err := ValidateTraceVocab(strings.NewReader(trace), paperStages)
	if err != nil {
		t.Fatalf("in-vocabulary trace rejected: %v", err)
	}
	if sum.Total(StageUBF, CtrBallsTested) != 7 {
		t.Fatalf("summary lost the counter: %+v", sum)
	}

	// The candidates stage becomes admissible once declared (a
	// flooding-competitor vocabulary, or the multi-detector union).
	union := append(append([]Stage{}, paperStages...), StageCandidates)
	cand := `{"ev":"count","stage":"candidates","counter":"local_tests","value":3,"seq":0,"ts_ns":1}` + "\n"
	if _, err := ValidateTraceVocab(strings.NewReader(cand), union); err != nil {
		t.Fatalf("declared candidates stage rejected: %v", err)
	}
}
