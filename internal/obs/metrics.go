package obs

import (
	"math"
	"math/bits"
	"sort"
	"strconv"
	"sync/atomic"
)

// This file is the always-on aggregation sink: where Mem keeps every
// event for test introspection and JSONL streams them to disk, Metrics
// folds the stream into fixed-size atomic tables — per-(stage, counter)
// totals plus a per-stage latency histogram — cheap enough to leave
// attached to a long-lived boundaryd process under load. The FTDC capture
// layer (internal/obs/ftdc) periodically snapshots a Metrics into its
// binary delta-encoded ring.

// Log-linear histogram layout: values below histLinear nanoseconds get
// one bucket each; every power-of-two octave above that is split into
// histSub linear sub-buckets, so the relative quantization error is
// bounded by 1/histSub (12.5%) across the whole int64 range. The layout
// is part of the FTDC wire contract — changing it invalidates recorded
// rings — so the constants are mirrored in DESIGN.md §14.
const (
	histLinear = 8 // values in [0, 8) ns are exact
	histSub    = 8 // sub-buckets per octave above that
	// HistBuckets is the fixed bucket count of every stage latency
	// histogram: 8 exact buckets plus 61 octaves (2^3..2^63) of 8
	// sub-buckets.
	HistBuckets = histLinear + (64-3)*histSub
)

// histBucketOf maps a non-negative duration to its bucket index.
func histBucketOf(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	u := uint64(ns)
	if u < histLinear {
		return int(u)
	}
	b := bits.Len64(u)             // 4..64, since u >= 8
	mant := u >> (uint(b) - 4)     // top 4 bits, in [8, 16)
	return histLinear + (b-4)*histSub + int(mant-histLinear)
}

// BucketLow returns the inclusive lower bound (in nanoseconds) of
// histogram bucket i — the representative value quantile lookups report.
// Bounds past int64 range (the top octave is only reachable from uint64
// inputs the recorder never produces) saturate to MaxInt64.
func BucketLow(i int) int64 {
	if i < histLinear {
		if i < 0 {
			return 0
		}
		return int64(i)
	}
	o := (i - histLinear) / histSub
	m := (i - histLinear) % histSub
	if o > 60 {
		return math.MaxInt64
	}
	v := uint64(histLinear+m) << uint(o)
	if v > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(v)
}

// histogram is one stage's latency distribution: fixed log-linear
// buckets updated with two atomic adds per recorded span, so the record
// path allocates nothing and takes no locks.
type histogram struct {
	sum     atomic.Int64
	buckets [HistBuckets]atomic.Int64
}

func (h *histogram) record(ns int64) {
	h.sum.Add(ns)
	h.buckets[histBucketOf(ns)].Add(1)
}

// HistSnapshot is a point-in-time copy of one latency histogram,
// decoupled from the live atomics: Counts[i] spans recorded in bucket i
// (lower bound BucketLow(i)), SumNS their summed wall time.
type HistSnapshot struct {
	Counts []int64
	SumNS  int64
}

// Count totals the recorded spans.
func (h HistSnapshot) Count() int64 {
	var n int64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Quantile returns the lower bound of the bucket holding the q-quantile
// (0 < q <= 1) — within one sub-bucket (12.5%) of the true value. Zero
// when the histogram is empty.
func (h HistSnapshot) Quantile(q float64) int64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var seen int64
	for i, c := range h.Counts {
		seen += c
		if seen >= target {
			return BucketLow(i)
		}
	}
	return BucketLow(len(h.Counts) - 1)
}

// Max returns the lower bound of the highest occupied bucket; zero when
// empty.
func (h HistSnapshot) Max() int64 {
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if h.Counts[i] != 0 {
			return BucketLow(i)
		}
	}
	return 0
}

// LatencyStats is the wire rendering of one stage's latency summary —
// what boundaryd's GET /v1/metrics and tracestat -ftdc report.
type LatencyStats struct {
	Count int64 `json:"count"`
	SumNS int64 `json:"sum_ns"`
	P50NS int64 `json:"p50_ns"`
	P95NS int64 `json:"p95_ns"`
	P99NS int64 `json:"p99_ns"`
	MaxNS int64 `json:"max_ns"`
}

// Stats folds a snapshot into the standard quantile summary.
func (h HistSnapshot) Stats() LatencyStats {
	return LatencyStats{
		Count: h.Count(),
		SumNS: h.SumNS,
		P50NS: h.Quantile(0.50),
		P95NS: h.Quantile(0.95),
		P99NS: h.Quantile(0.99),
		MaxNS: h.Max(),
	}
}

// Metric is one named scalar in a metrics snapshot — the document unit
// the FTDC capture delta-encodes. Key vocabulary (all components use the
// String() spellings of the obs enums):
//
//	ctr/<stage>/<counter>   counter total
//	lat/<stage>/b<idx>      latency histogram bucket count
//	lat/<stage>/sum         summed span wall time (ns)
//	rounds/<stage>          completed protocol rounds
//	spans/<stage>           completed spans
//	trans/<transition>      node state changes
//	ts/unix_ns              sample wall-clock stamp (sampler-added)
type Metric struct {
	Key   string
	Value int64
}

// Metrics is the always-on Observer: fixed atomic tables, no locks, no
// allocation on any record path — the counter hot path is two bounds
// checks and one atomic add, asserted by TestMetricsHotPathZeroAllocs.
// Unknown enum values fold into slot 0 rather than panicking, so a
// corrupted event can never crash a server. The zero value is ready.
//
// Reads (Snapshot, Total, Latency) run concurrently with writes; a
// snapshot taken mid-update may be skewed by in-flight events, but a
// quiesced Metrics (all emitters stopped) snapshots exactly — the FTDC
// round-trip gates rely on that final-sample exactness.
type Metrics struct {
	counters [stageEnd][counterEnd]atomic.Int64
	spans    [stageEnd]atomic.Int64
	rounds   [stageEnd]atomic.Int64
	trans    [transitionEnd]atomic.Int64
	lat      [stageEnd]histogram
}

// clampStage folds out-of-range stages into the unused slot 0.
func clampStage(s Stage) Stage {
	if s >= stageEnd {
		return 0
	}
	return s
}

// StageBegin implements Observer; begins are free — only ends carry wall
// time.
func (m *Metrics) StageBegin(Stage, string) {}

// StageEnd implements Observer: one completed span lands in the stage's
// latency histogram.
func (m *Metrics) StageEnd(s Stage, _ string, wallNS int64) {
	s = clampStage(s)
	m.spans[s].Add(1)
	m.lat[s].record(wallNS)
}

// Count implements Observer.
func (m *Metrics) Count(s Stage, c Counter, delta int64) {
	s = clampStage(s)
	if c >= counterEnd {
		c = 0
	}
	m.counters[s][c].Add(delta)
}

// RoundBegin implements Observer.
func (m *Metrics) RoundBegin(Stage, int) {}

// RoundEnd implements Observer. Per-message accounting already arrives
// through the msgs_* counters, so only the round count is kept — folding
// RoundStats in too would double-count.
func (m *Metrics) RoundEnd(s Stage, _ int, _ RoundStats) {
	m.rounds[clampStage(s)].Add(1)
}

// NodeTransition implements Observer.
func (m *Metrics) NodeTransition(_ Stage, t Transition, _ int, _ int64) {
	if t >= transitionEnd {
		t = 0
	}
	m.trans[t].Add(1)
}

// Total returns one stage counter's accumulated value.
func (m *Metrics) Total(s Stage, c Counter) int64 {
	if s >= stageEnd || c >= counterEnd {
		return 0
	}
	return m.counters[s][c].Load()
}

// Totals flattens the nonzero counters into the same "stage/counter" ->
// value map obs.Mem.Totals produces, so in-memory and always-on sinks
// compare key for key.
func (m *Metrics) Totals() map[string]int64 {
	out := make(map[string]int64)
	for s := Stage(1); s < stageEnd; s++ {
		for c := Counter(1); c < counterEnd; c++ {
			if v := m.counters[s][c].Load(); v != 0 {
				out[s.String()+"/"+c.String()] = v
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Latency snapshots one stage's histogram.
func (m *Metrics) Latency(s Stage) HistSnapshot {
	if s >= stageEnd {
		return HistSnapshot{}
	}
	h := &m.lat[s]
	snap := HistSnapshot{SumNS: h.sum.Load()}
	var counts []int64
	for i := range h.buckets {
		if c := h.buckets[i].Load(); c != 0 {
			if counts == nil {
				counts = make([]int64, HistBuckets)
			}
			counts[i] = c
		}
	}
	snap.Counts = counts
	return snap
}

// LatencySummaries renders every stage with at least one completed span
// as its quantile summary, keyed by stage name.
func (m *Metrics) LatencySummaries() map[string]LatencyStats {
	out := make(map[string]LatencyStats)
	for s := Stage(1); s < stageEnd; s++ {
		if snap := m.Latency(s); snap.Count() > 0 {
			out[s.String()] = snap.Stats()
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Snapshot appends every nonzero metric to buf as a key-sorted document
// — the FTDC sample unit. Zero-valued slots are skipped, so the key set
// grows monotonically as stages fire and the capture layer's
// schema-change records stay rare.
func (m *Metrics) Snapshot(buf []Metric) []Metric {
	for s := Stage(1); s < stageEnd; s++ {
		sn := s.String()
		for c := Counter(1); c < counterEnd; c++ {
			if v := m.counters[s][c].Load(); v != 0 {
				buf = append(buf, Metric{Key: "ctr/" + sn + "/" + c.String(), Value: v})
			}
		}
		h := &m.lat[s]
		for i := range h.buckets {
			if v := h.buckets[i].Load(); v != 0 {
				buf = append(buf, Metric{Key: "lat/" + sn + "/b" + strconv.Itoa(i), Value: v})
			}
		}
		if v := h.sum.Load(); v != 0 {
			buf = append(buf, Metric{Key: "lat/" + sn + "/sum", Value: v})
		}
		if v := m.rounds[s].Load(); v != 0 {
			buf = append(buf, Metric{Key: "rounds/" + sn, Value: v})
		}
		if v := m.spans[s].Load(); v != 0 {
			buf = append(buf, Metric{Key: "spans/" + sn, Value: v})
		}
	}
	for t := Transition(1); t < transitionEnd; t++ {
		if v := m.trans[t].Load(); v != 0 {
			buf = append(buf, Metric{Key: "trans/" + t.String(), Value: v})
		}
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i].Key < buf[j].Key })
	return buf
}
