package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// traceLine is the JSONL wire format: one event per line. ts_ns is the
// time since the writer was opened, so a trace reads as a timeline
// without trusting wall clocks across processes.
//
//	{"ev":"begin","stage":"ubf","ts_ns":12345}
//	{"ev":"end","stage":"ubf","ts_ns":99999,"wall_ns":87654}
//	{"ev":"count","stage":"iff","counter":"msgs_delivered","value":1234,"ts_ns":100000}
type traceLine struct {
	Ev      string `json:"ev"`
	Stage   string `json:"stage"`
	Label   string `json:"label,omitempty"`
	Counter string `json:"counter,omitempty"`
	Value   *int64 `json:"value,omitempty"`
	WallNS  *int64 `json:"wall_ns,omitempty"`
	TsNS    int64  `json:"ts_ns"`
}

// JSONL is an Observer writing one JSON object per event to an io.Writer
// — the sink behind `cmd/experiment -trace`. Writes are serialized by a
// mutex so concurrently-emitting pipeline workers produce intact lines.
// Encoding errors are sticky and surfaced by Close/Err rather than per
// event, so instrumented code stays error-free.
type JSONL struct {
	mu    sync.Mutex
	w     *bufio.Writer
	enc   *json.Encoder
	start time.Time
	err   error
}

// NewJSONL wraps w in a JSONL sink. The caller owns closing the
// underlying writer; call Close (or Flush) first.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{w: bw, enc: json.NewEncoder(bw), start: time.Now()}
}

func (j *JSONL) emit(l traceLine) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	l.TsNS = time.Since(j.start).Nanoseconds()
	j.err = j.enc.Encode(l)
}

// StageBegin implements Observer.
func (j *JSONL) StageBegin(s Stage, label string) {
	j.emit(traceLine{Ev: "begin", Stage: s.String(), Label: label})
}

// StageEnd implements Observer.
func (j *JSONL) StageEnd(s Stage, label string, wallNS int64) {
	j.emit(traceLine{Ev: "end", Stage: s.String(), Label: label, WallNS: &wallNS})
}

// Count implements Observer.
func (j *JSONL) Count(s Stage, c Counter, delta int64) {
	j.emit(traceLine{Ev: "count", Stage: s.String(), Counter: c.String(), Value: &delta})
}

// Flush drains buffered lines to the underlying writer.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	return j.w.Flush()
}

// Err returns the first write or encoding error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// TraceSummary aggregates a validated trace.
type TraceSummary struct {
	// Events is the total line count.
	Events int
	// Spans counts completed spans per stage.
	Spans map[Stage]int
	// Counters sums counter values per (stage, counter).
	Counters map[Stage]map[Counter]int64
}

// Total returns a summed counter value for one stage; zero when absent.
func (t TraceSummary) Total(s Stage, c Counter) int64 {
	return t.Counters[s][c]
}

// CounterTotal sums one counter across all stages.
func (t TraceSummary) CounterTotal(c Counter) int64 {
	var n int64
	for _, m := range t.Counters {
		n += m[c]
	}
	return n
}

// ValidateTrace parses a JSONL trace and checks it against the schema:
// every line a well-formed object with a known ev/stage, counter lines
// carrying a known counter and a value, end lines carrying a non-negative
// wall_ns, ts_ns non-decreasing per emitter's promise (not enforced —
// concurrent emitters interleave), and begin/end balanced per stage. It
// returns the aggregate summary on success.
func ValidateTrace(r io.Reader) (TraceSummary, error) {
	sum := TraceSummary{
		Spans:    make(map[Stage]int),
		Counters: make(map[Stage]map[Counter]int64),
	}
	open := make(map[Stage]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var l traceLine
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&l); err != nil {
			return sum, fmt.Errorf("obs: trace line %d: %w", lineNo, err)
		}
		stage, ok := StageFromString(l.Stage)
		if !ok {
			return sum, fmt.Errorf("obs: trace line %d: unknown stage %q", lineNo, l.Stage)
		}
		switch l.Ev {
		case "begin":
			open[stage]++
		case "end":
			if l.WallNS == nil || *l.WallNS < 0 {
				return sum, fmt.Errorf("obs: trace line %d: end event needs wall_ns >= 0", lineNo)
			}
			open[stage]--
			sum.Spans[stage]++
		case "count":
			ctr, ok := CounterFromString(l.Counter)
			if !ok {
				return sum, fmt.Errorf("obs: trace line %d: unknown counter %q", lineNo, l.Counter)
			}
			if l.Value == nil {
				return sum, fmt.Errorf("obs: trace line %d: count event needs a value", lineNo)
			}
			if sum.Counters[stage] == nil {
				sum.Counters[stage] = make(map[Counter]int64)
			}
			sum.Counters[stage][ctr] += *l.Value
		default:
			return sum, fmt.Errorf("obs: trace line %d: unknown event kind %q", lineNo, l.Ev)
		}
		sum.Events++
	}
	if err := sc.Err(); err != nil {
		return sum, fmt.Errorf("obs: trace: %w", err)
	}
	for s, n := range open {
		if n != 0 {
			return sum, fmt.Errorf("obs: trace: %d unbalanced %s span(s)", n, s)
		}
	}
	return sum, nil
}
