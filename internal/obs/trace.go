package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// traceLine is the JSONL wire format: one event per line. ts_ns is the
// time since the writer was opened, so a trace reads as a timeline
// without trusting wall clocks across processes. seq is a per-writer
// monotonic line number assigned under the sink's mutex, so events from
// concurrent sweep cells stay totally ordered even when ts_ns ties.
//
//	{"ev":"begin","stage":"ubf","seq":0,"ts_ns":12345}
//	{"ev":"end","stage":"ubf","seq":1,"ts_ns":99999,"wall_ns":87654}
//	{"ev":"count","stage":"iff","counter":"msgs_delivered","value":1234,"seq":2,"ts_ns":100000}
//	{"ev":"round_begin","stage":"iff","round":0,"seq":3,"ts_ns":100100}
//	{"ev":"round_end","stage":"iff","round":0,"stats":{...},"seq":4,"ts_ns":100200}
//	{"ev":"trans","stage":"grouping","trans":"label_adopt","node":17,"value":3,"seq":5,"ts_ns":100300}
type traceLine struct {
	Ev      string      `json:"ev"`
	Stage   string      `json:"stage"`
	Label   string      `json:"label,omitempty"`
	Counter string      `json:"counter,omitempty"`
	Value   *int64      `json:"value,omitempty"`
	WallNS  *int64      `json:"wall_ns,omitempty"`
	Round   *int        `json:"round,omitempty"`
	Stats   *RoundStats `json:"stats,omitempty"`
	Trans   string      `json:"trans,omitempty"`
	Node    *int        `json:"node,omitempty"`
	Seq     *int64      `json:"seq"`
	TsNS    int64       `json:"ts_ns"`
}

// JSONL is an Observer writing one JSON object per event to an io.Writer
// — the sink behind `cmd/experiment -trace`. Writes are serialized by a
// mutex so concurrently-emitting pipeline workers produce intact lines.
// Encoding errors are sticky and surfaced by Close/Err rather than per
// event, so instrumented code stays error-free.
type JSONL struct {
	mu    sync.Mutex
	w     *bufio.Writer
	enc   *json.Encoder
	start time.Time
	seq   int64
	err   error
}

// NewJSONL wraps w in a JSONL sink. The caller owns closing the
// underlying writer; call Close (or Flush) first.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{w: bw, enc: json.NewEncoder(bw), start: time.Now()}
}

func (j *JSONL) emit(l traceLine) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	seq := j.seq
	j.seq++
	l.Seq = &seq
	l.TsNS = time.Since(j.start).Nanoseconds()
	j.err = j.enc.Encode(l)
}

// StageBegin implements Observer.
func (j *JSONL) StageBegin(s Stage, label string) {
	j.emit(traceLine{Ev: "begin", Stage: s.String(), Label: label})
}

// StageEnd implements Observer.
func (j *JSONL) StageEnd(s Stage, label string, wallNS int64) {
	j.emit(traceLine{Ev: "end", Stage: s.String(), Label: label, WallNS: &wallNS})
}

// Count implements Observer.
func (j *JSONL) Count(s Stage, c Counter, delta int64) {
	j.emit(traceLine{Ev: "count", Stage: s.String(), Counter: c.String(), Value: &delta})
}

// RoundBegin implements Observer.
func (j *JSONL) RoundBegin(s Stage, round int) {
	j.emit(traceLine{Ev: "round_begin", Stage: s.String(), Round: &round})
}

// RoundEnd implements Observer.
func (j *JSONL) RoundEnd(s Stage, round int, rs RoundStats) {
	j.emit(traceLine{Ev: "round_end", Stage: s.String(), Round: &round, Stats: &rs})
}

// NodeTransition implements Observer.
func (j *JSONL) NodeTransition(s Stage, t Transition, node int, value int64) {
	j.emit(traceLine{Ev: "trans", Stage: s.String(), Trans: t.String(), Node: &node, Value: &value})
}

// Flush drains buffered lines to the underlying writer.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	return j.w.Flush()
}

// Err returns the first write or encoding error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// TraceEvent is one parsed trace line: the in-memory Event plus its wire
// ordering metadata.
type TraceEvent struct {
	Event
	// Seq is the writer-assigned monotonic line number.
	Seq int64
	// TsNS is the line's timestamp relative to the writer's start.
	TsNS int64
}

// TraceSummary aggregates a validated trace.
type TraceSummary struct {
	// Events is the total line count.
	Events int
	// Spans counts completed spans per stage.
	Spans map[Stage]int
	// Counters sums counter values per (stage, counter).
	Counters map[Stage]map[Counter]int64
	// Rounds counts completed protocol rounds per stage.
	Rounds map[Stage]int
	// Transitions counts node state changes per kind.
	Transitions map[Transition]int
	// Wall sums completed-span wall time per stage.
	Wall map[Stage]int64
}

// Total returns a summed counter value for one stage; zero when absent.
func (t TraceSummary) Total(s Stage, c Counter) int64 {
	return t.Counters[s][c]
}

// CounterTotal sums one counter across all stages.
func (t TraceSummary) CounterTotal(c Counter) int64 {
	var n int64
	for _, m := range t.Counters {
		n += m[c]
	}
	return n
}

// spanKey scopes begin/end balance to (stage, label), so a labeled cell
// span cannot be closed by an unlabeled end of the same stage.
type spanKey struct {
	stage Stage
	label string
}

// roundKey scopes round balance to (stage, round).
type roundKey struct {
	stage Stage
	round int
}

// ReadTrace parses and validates a JSONL trace, returning every event in
// wire order plus the aggregate summary. Validation enforces the schema
// (known ev/stage/counter/trans vocabulary, no unknown fields, required
// payloads present), seq consecutive from 0, ts_ns non-decreasing (the
// writer serializes under one mutex, so the timeline is total), begin/end
// balance per (stage, label), round begin/end balance per (stage, round)
// with rounds ≥ InitRound, non-negative round stats, and nodes ≥ 0.
func ReadTrace(r io.Reader) ([]TraceEvent, TraceSummary, error) {
	sum := TraceSummary{
		Spans:       make(map[Stage]int),
		Counters:    make(map[Stage]map[Counter]int64),
		Rounds:      make(map[Stage]int),
		Transitions: make(map[Transition]int),
		Wall:        make(map[Stage]int64),
	}
	var events []TraceEvent
	openSpans := make(map[spanKey]int)
	openRounds := make(map[roundKey]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	var wantSeq, lastTs int64
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var l traceLine
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&l); err != nil {
			return events, sum, fmt.Errorf("obs: trace line %d: %w", lineNo, err)
		}
		if l.Seq == nil {
			return events, sum, fmt.Errorf("obs: trace line %d: missing seq", lineNo)
		}
		if *l.Seq != wantSeq {
			return events, sum, fmt.Errorf("obs: trace line %d: seq %d, want %d (gap or reorder)", lineNo, *l.Seq, wantSeq)
		}
		wantSeq++
		if l.TsNS < lastTs {
			return events, sum, fmt.Errorf("obs: trace line %d: ts_ns %d precedes previous %d", lineNo, l.TsNS, lastTs)
		}
		lastTs = l.TsNS
		stage, ok := StageFromString(l.Stage)
		if !ok {
			return events, sum, fmt.Errorf("obs: trace line %d: unknown stage %q", lineNo, l.Stage)
		}
		ev := TraceEvent{Event: Event{Stage: stage, Label: l.Label}, Seq: *l.Seq, TsNS: l.TsNS}
		switch l.Ev {
		case "begin":
			ev.Kind = KindBegin
			openSpans[spanKey{stage, l.Label}]++
		case "end":
			if l.WallNS == nil || *l.WallNS < 0 {
				return events, sum, fmt.Errorf("obs: trace line %d: end event needs wall_ns >= 0", lineNo)
			}
			ev.Kind = KindEnd
			ev.WallNS = *l.WallNS
			openSpans[spanKey{stage, l.Label}]--
			sum.Spans[stage]++
			sum.Wall[stage] += *l.WallNS
		case "count":
			ctr, ok := CounterFromString(l.Counter)
			if !ok {
				return events, sum, fmt.Errorf("obs: trace line %d: unknown counter %q", lineNo, l.Counter)
			}
			if l.Value == nil {
				return events, sum, fmt.Errorf("obs: trace line %d: count event needs a value", lineNo)
			}
			ev.Kind = KindCount
			ev.Counter = ctr
			ev.Value = *l.Value
			if sum.Counters[stage] == nil {
				sum.Counters[stage] = make(map[Counter]int64)
			}
			sum.Counters[stage][ctr] += *l.Value
		case "round_begin":
			if l.Round == nil || *l.Round < InitRound {
				return events, sum, fmt.Errorf("obs: trace line %d: round_begin needs round >= %d", lineNo, InitRound)
			}
			ev.Kind = KindRoundBegin
			ev.Round = *l.Round
			openRounds[roundKey{stage, *l.Round}]++
		case "round_end":
			if l.Round == nil || *l.Round < InitRound {
				return events, sum, fmt.Errorf("obs: trace line %d: round_end needs round >= %d", lineNo, InitRound)
			}
			if l.Stats == nil {
				return events, sum, fmt.Errorf("obs: trace line %d: round_end needs stats", lineNo)
			}
			rs := *l.Stats
			if rs.Sent < 0 || rs.Delivered < 0 || rs.Dropped < 0 || rs.Duplicated < 0 || rs.Delayed < 0 || rs.Active < 0 {
				return events, sum, fmt.Errorf("obs: trace line %d: negative round stats", lineNo)
			}
			ev.Kind = KindRoundEnd
			ev.Round = *l.Round
			ev.Stats = rs
			openRounds[roundKey{stage, *l.Round}]--
			sum.Rounds[stage]++
		case "trans":
			tr, ok := TransitionFromString(l.Trans)
			if !ok {
				return events, sum, fmt.Errorf("obs: trace line %d: unknown transition %q", lineNo, l.Trans)
			}
			if l.Node == nil || *l.Node < 0 {
				return events, sum, fmt.Errorf("obs: trace line %d: trans event needs node >= 0", lineNo)
			}
			if l.Value == nil {
				return events, sum, fmt.Errorf("obs: trace line %d: trans event needs a value", lineNo)
			}
			ev.Kind = KindTransition
			ev.Trans = tr
			ev.Node = *l.Node
			ev.Value = *l.Value
			sum.Transitions[tr]++
		default:
			return events, sum, fmt.Errorf("obs: trace line %d: unknown event kind %q", lineNo, l.Ev)
		}
		events = append(events, ev)
		sum.Events++
	}
	if err := sc.Err(); err != nil {
		return events, sum, fmt.Errorf("obs: trace: %w", err)
	}
	for k, n := range openSpans {
		if n != 0 {
			return events, sum, fmt.Errorf("obs: trace: %d unbalanced %s span(s) (label %q)", n, k.stage, k.label)
		}
	}
	for k, n := range openRounds {
		if n != 0 {
			return events, sum, fmt.Errorf("obs: trace: %d unbalanced %s round %d", n, k.stage, k.round)
		}
	}
	return events, sum, nil
}

// ValidateTrace parses a JSONL trace, checks it against the schema and
// ordering invariants (see ReadTrace), and returns the aggregate summary
// on success.
func ValidateTrace(r io.Reader) (TraceSummary, error) {
	_, sum, err := ReadTrace(r)
	return sum, err
}

// detectorOwnedStages are the stages only boundary detectors emit — the
// scope of the Detector.Vocab() contract. Events under any other stage
// (surface steps, eval cells, serving spans, ...) belong to shared
// infrastructure and are exempt from per-detector vocabulary checks.
var detectorOwnedStages = [...]Stage{
	StageFrames, StageUBF, StageIFF, StageGrouping, StageCandidates,
}

// CheckVocab enforces the detector vocabulary contract on an aggregated
// trace: every counter, span, round, or wall total recorded under a
// detector-owned stage must fall inside the declared stage list (a
// Detector.Vocab().Stages slice). ValidateTrace alone accepts any known
// stage/counter spelling, so a detector emitting under a stage it never
// declared — sv-contour counting under "ubf", say — used to pass
// validation silently; this is the closing check cli.Session runs when
// the run's detector set is known.
func (t TraceSummary) CheckVocab(declared []Stage) error {
	allowed := make(map[Stage]bool, len(declared))
	for _, s := range declared {
		allowed[s] = true
	}
	owned := make(map[Stage]bool, len(detectorOwnedStages))
	for _, s := range detectorOwnedStages {
		owned[s] = true
	}
	check := func(s Stage, what string) error {
		if owned[s] && !allowed[s] {
			return fmt.Errorf("obs: trace %s under stage %q, outside the declared detector vocabulary", what, s)
		}
		return nil
	}
	for s, m := range t.Counters {
		for c, v := range m {
			if v == 0 {
				continue
			}
			if err := check(s, "counter "+c.String()); err != nil {
				return err
			}
		}
	}
	for s, n := range t.Spans {
		if n > 0 {
			if err := check(s, "span"); err != nil {
				return err
			}
		}
	}
	for s, n := range t.Rounds {
		if n > 0 {
			if err := check(s, "round"); err != nil {
				return err
			}
		}
	}
	return nil
}

// ValidateTraceVocab is ValidateTrace plus the detector vocabulary
// contract: the trace must stay inside the declared stage list wherever
// it touches a detector-owned stage.
func ValidateTraceVocab(r io.Reader, declared []Stage) (TraceSummary, error) {
	sum, err := ValidateTrace(r)
	if err != nil {
		return sum, err
	}
	return sum, sum.CheckVocab(declared)
}
