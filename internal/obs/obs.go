// Package obs is the pipeline's zero-dependency observability layer:
// span-style stage events (begin/end with wall time), typed counters
// (balls tested, messages sent/dropped/retransmitted, flips applied, ...),
// and pluggable sinks — in-memory for tests, JSONL for `cmd/experiment
// -trace`, or nothing at all.
//
// The paper's claims are per-stage claims: UBF's ball tests (Sec. II-A),
// IFF's TTL-bounded floods (Sec. II-B), and the five surface-construction
// steps (Sec. III) each have their own cost and failure modes. This
// package gives every stage one vocabulary for reporting that cost, so
// `core.DetectContext`, the sim kernels, `mesh.BuildContext`, and
// `eval.Engine` all emit comparable events.
//
// The no-op path is a hard requirement, not a nicety: a nil Observer must
// add zero allocations and at most a nil check per call site, so the
// instrumented hot paths keep their benchmarked numbers. Every helper in
// this package (Start, Add, Span.End) is nil-safe and returns before
// touching the clock when the observer is nil; observation never changes
// what the pipeline computes, only what it reports.
package obs

import "time"

// Stage identifies one pipeline stage in stage events and counters.
type Stage uint8

const (
	// StageDetect spans one whole core.Detect run.
	StageDetect Stage = iota + 1
	// StageFrames is detection stage 1: per-node MDS frame construction.
	StageFrames
	// StageUBF is detection stage 2: Unit Ball Fitting (Sec. II-A).
	StageUBF
	// StageIFF is detection stage 3: Isolated Fragment Filtering's
	// TTL-bounded flood (Sec. II-B).
	StageIFF
	// StageGrouping is detection stage 4: boundary grouping by min-label
	// propagation (Sec. II-B).
	StageGrouping
	// StageSurface spans one whole mesh.Build run (Sec. III).
	StageSurface
	// StageLandmarks is surface step I: landmark election.
	StageLandmarks
	// StageCDG is surface step II: the Combinatorial Delaunay Graph.
	StageCDG
	// StageCDM is surface step III: the planarized CDM subgraph.
	StageCDM
	// StageTriangulate is surface step IV: polygon triangulation.
	StageTriangulate
	// StageFlip is surface step V: edge flipping.
	StageFlip
	// StageCell is one evaluation cell — a (scenario, level) pair or an
	// ablation variant — in an eval.Engine study; the label names it.
	StageCell
	// StageExperiment spans one cmd/experiment run target.
	StageExperiment
	// StagePartition is the sharded engine's setup phase: spatial shard
	// assignment plus per-shard view (owned + ghost halo) construction.
	StagePartition
	// StageIncremental spans one core.Incremental.Apply: a single
	// join/leave/move/crash delta's dirty-region recomputation.
	StageIncremental
	// StageServe spans one boundaryd HTTP request; the label names the
	// route (e.g. "POST /v1/sessions/{id}/deltas").
	StageServe
	// StageCandidates is the competitor detectors' candidate-selection
	// phase (enclosure tests, contour fields, degree statistics) — the
	// structural analogue of StageUBF for non-paper core.Detector
	// implementations.
	StageCandidates
	// StageMeshInc spans one mesh.Incremental surface serve: cache
	// invalidation plus the rebuild of whichever group surfaces a delta
	// stream dirtied since the last serve.
	StageMeshInc

	stageEnd // sentinel: number of stages + 1
)

var stageNames = [...]string{
	StageDetect:      "detect",
	StageFrames:      "frames",
	StageUBF:         "ubf",
	StageIFF:         "iff",
	StageGrouping:    "grouping",
	StageSurface:     "surface",
	StageLandmarks:   "landmarks",
	StageCDG:         "cdg",
	StageCDM:         "cdm",
	StageTriangulate: "triangulate",
	StageFlip:        "flip",
	StageCell:        "cell",
	StageExperiment:  "experiment",
	StagePartition:   "partition",
	StageIncremental: "incremental",
	StageServe:       "serve",
	StageCandidates:  "candidates",
	StageMeshInc:     "mesh_incremental",
}

// String implements fmt.Stringer; unknown stages print as "stage?".
func (s Stage) String() string {
	if int(s) < len(stageNames) && stageNames[s] != "" {
		return stageNames[s]
	}
	return "stage?"
}

// StageFromString inverts Stage.String; false when unknown.
func StageFromString(name string) (Stage, bool) {
	for s, n := range stageNames {
		if n == name {
			return Stage(s), true
		}
	}
	return 0, false
}

// Transition identifies one kind of node state change — the closed
// vocabulary of the protocol flight recorder. Where counters aggregate
// and spans time, transitions pinpoint: *which* node claimed boundary
// status, had its claim rescinded by IFF, adopted a smaller group label,
// or won a landmark election, in exact protocol order.
type Transition uint8

const (
	// TransBoundaryClaim is a node marking itself boundary after UBF
	// (Sec. II-A): an empty unit ball through the node was found.
	TransBoundaryClaim Transition = iota + 1
	// TransIFFRescind is Isolated Fragment Filtering withdrawing a
	// node's boundary claim (Sec. II-B): fewer than θ fellow candidates
	// answered the TTL-T flood. The event value carries the fragment
	// size that fell short.
	TransIFFRescind
	// TransLabelAdopt is a node adopting a smaller group label during
	// boundary grouping (Sec. II-B). The event value carries the label.
	TransLabelAdopt
	// TransLandmarkElect is a node winning the k-hop landmark election
	// (surface step I).
	TransLandmarkElect

	transitionEnd // sentinel: number of transitions + 1
)

var transitionNames = [...]string{
	TransBoundaryClaim: "boundary_claim",
	TransIFFRescind:    "iff_rescind",
	TransLabelAdopt:    "label_adopt",
	TransLandmarkElect: "landmark_elect",
}

// String implements fmt.Stringer; unknown transitions print as "trans?".
func (t Transition) String() string {
	if int(t) < len(transitionNames) && transitionNames[t] != "" {
		return transitionNames[t]
	}
	return "trans?"
}

// TransitionFromString inverts Transition.String; false when unknown.
func TransitionFromString(name string) (Transition, bool) {
	for t, n := range transitionNames {
		if n == name {
			return Transition(t), true
		}
	}
	return 0, false
}

// Counter identifies one typed counter.
type Counter uint8

const (
	// CtrNodes counts the nodes a stage processed.
	CtrNodes Counter = iota + 1
	// CtrBallsTested counts UBF candidate balls examined (Theorem 1's
	// Θ(ρ²) quantity).
	CtrBallsTested
	// CtrNodesChecked counts UBF point-in-ball membership tests
	// (Theorem 1's Θ(ρ³) quantity).
	CtrNodesChecked
	// CtrGridCells counts spatial-grid cells probed by the pruned
	// emptiness test (zero on the brute path).
	CtrGridCells
	// CtrUBFBoundary counts nodes UBF marked as boundary candidates.
	CtrUBFBoundary
	// CtrBoundary counts nodes surviving IFF — the final boundary set.
	CtrBoundary
	// CtrGroups counts distinct boundary groups.
	CtrGroups
	// CtrMsgsSent counts send attempts presented to the network
	// (including retransmissions).
	CtrMsgsSent
	// CtrMsgsDelivered counts messages handed to protocol handlers.
	CtrMsgsDelivered
	// CtrMsgsDropped counts deliveries lost to random loss, crashed
	// receivers, or partitions.
	CtrMsgsDropped
	// CtrMsgsDuplicated counts extra copies injected by the fault layer.
	CtrMsgsDuplicated
	// CtrMsgsRetransmitted counts packets re-sent after an ack timeout.
	CtrMsgsRetransmitted
	// CtrMsgsAcked counts acknowledgments processed.
	CtrMsgsAcked
	// CtrMsgsAbandoned counts packets given up on after the retransmit
	// budget.
	CtrMsgsAbandoned
	// CtrFloodRounds counts synchronous kernel rounds to quiescence.
	CtrFloodRounds
	// CtrLandmarks counts elected landmarks (surface step I).
	CtrLandmarks
	// CtrEdgesCDG and CtrEdgesCDM count the step II/III edge sets.
	CtrEdgesCDG
	CtrEdgesCDM
	// CtrFaces counts final mesh triangles.
	CtrFaces
	// CtrFlips counts step-V edge flips applied.
	CtrFlips
	// CtrBFSRuns counts graph traversals started by the surface pipeline
	// (landmark election, association, SPT builds, and any uncached path
	// queries).
	CtrBFSRuns
	// CtrBFSNodesVisited counts the nodes those traversals reached — the
	// substrate work the SPT cache exists to shrink.
	CtrBFSNodesVisited
	// CtrSPTCacheHits counts path/distance queries answered from a cached
	// shortest-path tree instead of a fresh BFS.
	CtrSPTCacheHits
	// CtrShards counts the spatial shards a sharded detection ran on.
	CtrShards
	// CtrHaloNodes counts ghost nodes replicated into shard views — the
	// sharded engine's halo-exchange volume, summed over shards.
	CtrHaloNodes
	// CtrSessions tracks live boundaryd sessions: +1 on create, −1 on
	// delete, so the trace total is the number still open at exit.
	CtrSessions
	// CtrDeltas counts join/leave/move/crash deltas applied across all
	// sessions.
	CtrDeltas
	// CtrDirtyUBF counts the nodes whose UBF verdict the incremental
	// engine re-evaluated — the dirty region a delta actually touched.
	CtrDirtyUBF
	// CtrDirtyIFF counts the boundary candidates whose IFF flood count
	// the incremental engine re-evaluated.
	CtrDirtyIFF
	// CtrCandidates counts the nodes a competitor detector marked as
	// boundary candidates before fragment filtering (the
	// StageCandidates analogue of CtrUBFBoundary).
	CtrCandidates
	// CtrLocalTests counts a competitor detector's primary per-node
	// work — enclosure direction tests, contour-field comparisons, or
	// degree-statistic scans (the StageCandidates analogue of
	// CtrBallsTested).
	CtrLocalTests
	// CtrMeshRepairs counts group surfaces the incremental mesh engine
	// rebuilt (cache misses); served surfaces minus repairs is the number
	// answered straight from the cache.
	CtrMeshRepairs
	// CtrDirtyPatch counts the nodes inside rebuilt groups — the dirty
	// patch a delta stream actually forced through the surface pipeline.
	CtrDirtyPatch
	// CtrSPTInvalidated counts cached shortest-path trees discarded by
	// mesh cache invalidation (one entry's landmark SPT set per evicted
	// surface).
	CtrSPTInvalidated

	counterEnd // sentinel: number of counters + 1
)

var counterNames = [...]string{
	CtrNodes:             "nodes",
	CtrBallsTested:       "balls_tested",
	CtrNodesChecked:      "nodes_checked",
	CtrGridCells:         "grid_cells_probed",
	CtrUBFBoundary:       "ubf_boundary",
	CtrBoundary:          "boundary_nodes",
	CtrGroups:            "groups",
	CtrMsgsSent:          "msgs_sent",
	CtrMsgsDelivered:     "msgs_delivered",
	CtrMsgsDropped:       "msgs_dropped",
	CtrMsgsDuplicated:    "msgs_duplicated",
	CtrMsgsRetransmitted: "msgs_retransmitted",
	CtrMsgsAcked:         "msgs_acked",
	CtrMsgsAbandoned:     "msgs_abandoned",
	CtrFloodRounds:       "flood_rounds",
	CtrLandmarks:         "landmarks",
	CtrEdgesCDG:          "cdg_edges",
	CtrEdgesCDM:          "cdm_edges",
	CtrFaces:             "faces",
	CtrFlips:             "flips_applied",
	CtrBFSRuns:           "bfs_runs",
	CtrBFSNodesVisited:   "bfs_nodes_visited",
	CtrSPTCacheHits:      "spt_cache_hits",
	CtrShards:            "shards",
	CtrHaloNodes:         "halo_nodes",
	CtrSessions:          "sessions",
	CtrDeltas:            "deltas_applied",
	CtrDirtyUBF:          "dirty_ubf_nodes",
	CtrDirtyIFF:          "dirty_iff_nodes",
	CtrCandidates:        "candidate_nodes",
	CtrLocalTests:        "local_tests",
	CtrMeshRepairs:       "mesh_repairs",
	CtrDirtyPatch:        "dirty_patch_nodes",
	CtrSPTInvalidated:    "spt_invalidated",
}

// String implements fmt.Stringer; unknown counters print as "counter?".
func (c Counter) String() string {
	if int(c) < len(counterNames) && counterNames[c] != "" {
		return counterNames[c]
	}
	return "counter?"
}

// CounterFromString inverts Counter.String; false when unknown.
func CounterFromString(name string) (Counter, bool) {
	for c, n := range counterNames {
		if n == name {
			return Counter(c), true
		}
	}
	return 0, false
}

// RoundStats is one round's message accounting, attached to RoundEnd by
// the flight recorder: what the round's senders presented to the network
// and what its receivers actually processed. For the synchronous kernel a
// round is a kernel round; for the asynchronous kernel it is one MaxDelay
// window of virtual time. Sends are attributed to the round they were
// issued in, deliveries to the round they were handled in, so
// sent+duplicated−delivered−dropped summed over all rounds is the number
// of messages still in flight when the protocol stopped (zero iff it
// quiesced).
type RoundStats struct {
	// Sent counts send attempts presented to the network this round
	// (retransmissions included, injected duplicates not).
	Sent int64 `json:"sent"`
	// Delivered counts messages handed to protocol handlers this round.
	Delivered int64 `json:"delivered"`
	// Dropped counts deliveries killed this round: random loss and
	// partition cuts at send time, crashed receivers at delivery time.
	Dropped int64 `json:"dropped"`
	// Duplicated counts extra copies the fault layer injected.
	Duplicated int64 `json:"duplicated"`
	// Delayed counts sends held back by fault-injected extra latency.
	Delayed int64 `json:"delayed"`
	// Active counts the nodes that processed a delivery or timer this
	// round — the protocol's frontier size.
	Active int64 `json:"active"`
}

// add accumulates another round's counters (used by trace analytics when
// merging interleaved emitters).
func (r *RoundStats) Add(o RoundStats) {
	r.Sent += o.Sent
	r.Delivered += o.Delivered
	r.Dropped += o.Dropped
	r.Duplicated += o.Duplicated
	r.Delayed += o.Delayed
	r.Active += o.Active
}

// InitRound is the pseudo-round number carrying a protocol's Init-time
// sends: they happen before round 0 executes, so the flight recorder
// reports them as round −1.
const InitRound = -1

// Observer receives stage events, counters, and the flight recorder's
// round and node-transition events. Implementations must be safe for
// concurrent use: the pipeline emits from worker pools.
//
// Callers hold observers as a possibly-nil interface and go through the
// nil-safe package helpers (Start, Add, RoundBegin, RoundEnd,
// NodeTransition); they never call these methods on a value they have
// not nil-checked.
type Observer interface {
	// StageBegin marks the start of a span. label is "" for pipeline
	// stages and a cell identifier for StageCell spans.
	StageBegin(s Stage, label string)
	// StageEnd closes the innermost open span of the stage, carrying the
	// measured wall time.
	StageEnd(s Stage, label string, wallNS int64)
	// Count adds delta to the stage's counter.
	Count(s Stage, c Counter, delta int64)
	// RoundBegin marks the start of one protocol round (InitRound for
	// the Init phase) under the stage.
	RoundBegin(s Stage, round int)
	// RoundEnd closes the round, carrying its message accounting.
	RoundEnd(s Stage, round int, rs RoundStats)
	// NodeTransition records one node state change. value carries the
	// transition's payload (the adopted label, the failing fragment
	// size); zero when the kind needs none.
	NodeTransition(s Stage, t Transition, node int, value int64)
}

// Span is an in-flight stage measurement. The zero value (from a nil
// observer) is inert: End returns immediately. Spans are values — starting
// and ending one allocates nothing.
type Span struct {
	o     Observer
	s     Stage
	label string
	start time.Time
}

// Start begins an unlabeled span on the observer; nil-safe.
func Start(o Observer, s Stage) Span {
	return StartLabeled(o, s, "")
}

// StartLabeled begins a labeled span on the observer; nil-safe. The clock
// is read only when the observer is non-nil.
func StartLabeled(o Observer, s Stage, label string) Span {
	if o == nil {
		return Span{}
	}
	o.StageBegin(s, label)
	return Span{o: o, s: s, label: label, start: time.Now()}
}

// End closes the span with its measured wall time; inert on the zero
// value.
func (sp Span) End() {
	if sp.o == nil {
		return
	}
	sp.o.StageEnd(sp.s, sp.label, time.Since(sp.start).Nanoseconds())
}

// Add emits one counter increment; nil-safe, and silent for zero deltas
// so disabled counters never clutter a trace.
func Add(o Observer, s Stage, c Counter, delta int64) {
	if o == nil || delta == 0 {
		return
	}
	o.Count(s, c, delta)
}

// RoundBegin emits the start of one protocol round; nil-safe.
func RoundBegin(o Observer, s Stage, round int) {
	if o == nil {
		return
	}
	o.RoundBegin(s, round)
}

// RoundEnd emits the end of one protocol round with its message
// accounting; nil-safe.
func RoundEnd(o Observer, s Stage, round int, rs RoundStats) {
	if o == nil {
		return
	}
	o.RoundEnd(s, round, rs)
}

// NodeTransition emits one node state change; nil-safe.
func NodeTransition(o Observer, s Stage, t Transition, node int, value int64) {
	if o == nil {
		return
	}
	o.NodeTransition(s, t, node, value)
}
