package graph

import (
	"math/rand"
	"testing"
)

// randomGraph builds a connected-ish random graph with AddEdge insertion
// order (unsorted adjacency rows), mirroring how tests elsewhere build
// graphs. Determinism of the CSR/SPT kernel must hold for arbitrary stored
// order, not just the sorted rows internal/netgen produces.
func randomGraph(n int, extra int, rng *rand.Rand) *Graph {
	g := New(n)
	perm := rng.Perm(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(perm[i], perm[i+1])
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

func randomFilter(n int, rng *rand.Rand) ([]bool, *NodeSet) {
	member := make([]bool, n)
	for i := range member {
		member[i] = rng.Float64() < 0.8
	}
	return member, NodeSetOf(member)
}

func eqIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCSRPreservesAdjacency asserts NewCSR mirrors the source rows
// verbatim — order included — since path determinism depends on scan order.
func TestCSRPreservesAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(40, 60, rng)
	c := NewCSR(g)
	if c.Len() != g.Len() || c.NumEdges() != g.NumEdges() {
		t.Fatalf("size mismatch: %d/%d nodes, %d/%d edges", c.Len(), g.Len(), c.NumEdges(), g.NumEdges())
	}
	for u := range g.Adj {
		row := c.Neighbors(u)
		if len(row) != len(g.Adj[u]) || c.Degree(u) != g.Degree(u) {
			t.Fatalf("node %d degree mismatch", u)
		}
		for k, v := range g.Adj[u] {
			if int(row[k]) != v {
				t.Fatalf("node %d slot %d: CSR has %d, graph has %d", u, k, row[k], v)
			}
		}
	}
}

// TestCSRShortestPathMatchesGraph is the core bit-identity differential:
// CSR.ShortestPath must equal Graph.ShortestPath for every pair, with and
// without a node filter.
func TestCSRShortestPathMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(50)
		g := randomGraph(n, n/2, rng)
		c := NewCSR(g)
		member, set := randomFilter(n, rng)
		var s Scratch
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				want := g.ShortestPath(u, v, InSet(member))
				got := c.ShortestPath(&s, u, v, set, nil)
				if !eqIntSlices(want, got) {
					t.Fatalf("trial %d path %d->%d: graph %v, csr %v", trial, u, v, want, got)
				}
			}
		}
	}
}

// TestSPTPathsMatchShortestPath asserts every path extracted from a cached
// SPT is bit-identical to a fresh truncated search from the same root.
func TestSPTPathsMatchShortestPath(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(60)
		g := randomGraph(n, n, rng)
		c := NewCSR(g)
		member, set := randomFilter(n, rng)
		roots := rng.Perm(n)[:5]
		trees, st, err := BuildSPTs(c, roots, set, 2)
		if err != nil {
			t.Fatal(err)
		}
		if st.Runs != int64(len(roots)) {
			t.Fatalf("Runs = %d, want %d", st.Runs, len(roots))
		}
		for i, root := range roots {
			tr := trees[i]
			if tr.Root != root {
				t.Fatalf("tree %d root %d, want %d", i, tr.Root, root)
			}
			for v := 0; v < n; v++ {
				want := g.ShortestPath(root, v, InSet(member))
				got := tr.PathTo(v, nil)
				if !eqIntSlices(want, got) {
					t.Fatalf("trial %d SPT path %d->%d: fresh %v, cached %v", trial, root, v, want, got)
				}
				wd := g.HopDistance(root, v, InSet(member))
				if tr.DistTo(v) != wd {
					t.Fatalf("trial %d dist %d->%d: fresh %d, cached %d", trial, root, v, wd, tr.DistTo(v))
				}
			}
		}
	}
}

// TestBFSHopsScratchMatchesBFSHops covers both the CSR traversal and the
// slice-adjacency scratch variant against the allocating original.
func TestBFSHopsScratchMatchesBFSHops(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		n := 5 + rng.Intn(60)
		g := randomGraph(n, n/3, rng)
		c := NewCSR(g)
		member, set := randomFilter(n, rng)
		sources := rng.Perm(n)[:1+rng.Intn(3)]
		maxHops := -1
		if rng.Intn(2) == 0 {
			maxHops = rng.Intn(6)
		}
		want := g.BFSHops(sources, InSet(member), maxHops)
		var s, s2 Scratch
		c.BFSHops(&s, sources, set, maxHops)
		g.BFSHopsScratch(&s2, sources, InSet(member), maxHops)
		for v := 0; v < n; v++ {
			if s.Dist(v) != want[v] {
				t.Fatalf("trial %d CSR dist[%d] = %d, want %d", trial, v, s.Dist(v), want[v])
			}
			if s2.Dist(v) != want[v] {
				t.Fatalf("trial %d scratch dist[%d] = %d, want %d", trial, v, s2.Dist(v), want[v])
			}
		}
		// Reached must enumerate exactly the reached set.
		reached := 0
		for _, d := range want {
			if d != Unreachable {
				reached++
			}
		}
		if len(s.Reached()) != reached || len(s2.Reached()) != reached {
			t.Fatalf("trial %d reached %d/%d, want %d", trial, len(s.Reached()), len(s2.Reached()), reached)
		}
	}
}

func TestCSRHopDistance(t *testing.T) {
	g := pathGraph(6)
	c := NewCSR(g)
	var s Scratch
	if d := c.HopDistance(&s, 0, 5, nil); d != 5 {
		t.Errorf("HopDistance(0,5) = %d", d)
	}
	if d := c.HopDistance(&s, 3, 3, nil); d != 0 {
		t.Errorf("HopDistance(3,3) = %d", d)
	}
	blocked := NewNodeSet(6)
	for _, v := range []int{0, 1, 2, 4, 5} {
		blocked.Add(v)
	}
	if d := c.HopDistance(&s, 0, 5, blocked); d != Unreachable {
		t.Errorf("severed HopDistance = %d, want Unreachable", d)
	}
	if p := c.ShortestPath(&s, 0, 5, blocked, nil); p != nil {
		t.Errorf("severed ShortestPath = %v, want nil", p)
	}
	if d := c.HopDistance(&s, -1, 2, nil); d != Unreachable {
		t.Errorf("out-of-range HopDistance = %d", d)
	}
}

func TestNodeSet(t *testing.T) {
	s := NewNodeSet(130)
	for _, v := range []int{0, 63, 64, 129} {
		s.Add(v)
	}
	s.Add(-1)
	s.Add(500) // out of capacity: ignored
	if s.Count() != 4 {
		t.Errorf("Count = %d", s.Count())
	}
	for _, v := range []int{0, 63, 64, 129} {
		if !s.Has(v) {
			t.Errorf("missing %d", v)
		}
	}
	if s.Has(1) || s.Has(-1) || s.Has(500) {
		t.Error("spurious membership")
	}
	fn := s.Func()
	if !fn(64) || fn(65) {
		t.Error("Func adapter mismatch")
	}
	s.Reset(10)
	if s.Count() != 0 || s.Has(0) {
		t.Error("Reset did not clear")
	}
	var nilSet *NodeSet
	if !nilSet.Func()(42) {
		t.Error("nil set Func must admit all")
	}
}

// TestSPTQueryAllocsZero pins the steady-state cost of a cached-SPT path
// query: with the tree built and the output buffer warm, extracting a path
// or a distance must not allocate.
func TestSPTQueryAllocsZero(t *testing.T) {
	g := gridGraph(16, 16)
	c := NewCSR(g)
	trees, _, err := BuildSPTs(c, []int{0}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := trees[0]
	buf := make([]int, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		buf = tr.PathTo(255, buf[:0])
		_ = tr.DistTo(128)
	})
	if allocs != 0 {
		t.Errorf("cached SPT query allocates %.1f per run, want 0", allocs)
	}
}

// TestScratchReuseAllocsZero pins the steady-state cost of a warm Scratch
// traversal on a CSR: no allocations once buffers are sized.
func TestScratchReuseAllocsZero(t *testing.T) {
	g := gridGraph(16, 16)
	c := NewCSR(g)
	var s Scratch
	c.BFSHops(&s, []int{0}, nil, -1) // warm the buffers
	srcs := []int{0}
	allocs := testing.AllocsPerRun(100, func() {
		c.BFSHops(&s, srcs, nil, -1)
	})
	if allocs != 0 {
		t.Errorf("warm CSR BFS allocates %.1f per run, want 0", allocs)
	}
}

// TestScratchEpochWrap forces the epoch counter through zero and checks
// stale marks do not leak into the new epoch.
func TestScratchEpochWrap(t *testing.T) {
	g := pathGraph(4)
	c := NewCSR(g)
	var s Scratch
	c.BFSHops(&s, []int{0}, nil, -1)
	s.epoch = ^uint32(0) // next begin() wraps to 0 and must recover
	c.BFSHops(&s, []int{3}, nil, 0)
	if s.Dist(3) != 0 {
		t.Errorf("dist[3] = %d after wrap", s.Dist(3))
	}
	if s.Dist(0) != Unreachable {
		t.Errorf("stale mark leaked: dist[0] = %d", s.Dist(0))
	}
}

func TestNewCSRFromEdgesNormalizes(t *testing.T) {
	c, err := NewCSRFromEdges(5, [][2]int{{0, 1}, {1, 0}, {0, 1}, {2, 2}, {3, 4}, {4, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(true); err != nil {
		t.Fatal(err)
	}
	if c.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2 (dups and self-loops dropped)", c.NumEdges())
	}
	if c.Degree(2) != 0 {
		t.Errorf("self-loop survived: degree(2) = %d", c.Degree(2))
	}
	if _, err := NewCSRFromEdges(3, [][2]int{{0, 3}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := NewCSRFromEdges(-1, nil); err == nil {
		t.Error("negative node count accepted")
	}
	empty, err := NewCSRFromEdges(0, nil)
	if err != nil || empty.Len() != 0 || empty.NumEdges() != 0 {
		t.Errorf("empty graph: %v len=%d", err, empty.Len())
	}
}

// FuzzCSRFromEdges feeds arbitrary byte-derived edge lists (duplicates,
// self-loops, empty graphs) through the normalized constructor and checks
// structural invariants plus traversal agreement with the slice-adjacency
// representation of the same normalized edge set.
func FuzzCSRFromEdges(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0, 1, 1, 0, 2, 2}, uint8(4))
	f.Add([]byte{5, 5, 1, 2, 2, 1, 0, 7}, uint8(8))
	f.Fuzz(func(t *testing.T, data []byte, nRaw uint8) {
		n := int(nRaw % 33)
		var edges [][2]int
		for i := 0; i+1 < len(data); i += 2 {
			edges = append(edges, [2]int{int(data[i]), int(data[i+1])})
		}
		c, err := NewCSRFromEdges(n, edges)
		if err != nil {
			for _, e := range edges {
				if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
					return // rejection was legitimate
				}
			}
			t.Fatalf("in-range edges rejected: %v", err)
		}
		if err := c.Validate(true); err != nil {
			t.Fatal(err)
		}
		// Rebuild as a Graph with the same normalized rows and require
		// identical traversal results from every source.
		g := New(n)
		for u := 0; u < n; u++ {
			for _, v := range c.Neighbors(u) {
				g.Adj[u] = append(g.Adj[u], int(v))
			}
		}
		var s Scratch
		for u := 0; u < n; u++ {
			want := g.BFSHops([]int{u}, All, -1)
			c.BFSHops(&s, []int{u}, nil, -1)
			for v := 0; v < n; v++ {
				if s.Dist(v) != want[v] {
					t.Fatalf("dist from %d to %d: csr %d, graph %d", u, v, s.Dist(v), want[v])
				}
			}
		}
	})
}
