package graph

// This file is the graph package's hot-path kernel: a compressed-sparse-row
// snapshot of a Graph (CSR), bitset node filters (NodeSet) replacing
// func(int) bool closures, reusable breadth-first-search scratch (Scratch)
// with epoch-stamped visited marks, and cached shortest-path trees (SPT)
// from which any root-to-node path extracts in O(path length).
//
// Everything here preserves the deterministic expansion rule of
// Graph.ShortestPath — FIFO frontier, neighbors scanned in stored adjacency
// order — so paths extracted from a CSR traversal or a cached SPT are
// bit-identical to the slice-adjacency implementation. The CDM construction
// (internal/mesh) relies on all nodes agreeing on "the" shortest path, and
// the differential tests rely on exact equality across representations.

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/par"
)

// CSR is a compressed-sparse-row snapshot of a graph: every adjacency list
// packed into one backing array. Neighbor order is preserved exactly as in
// the source, because the deterministic-path guarantee depends on the scan
// order. A CSR is immutable once built and safe for concurrent traversals
// (each with its own Scratch).
type CSR struct {
	rowPtr []int32
	col    []int32
}

// NewCSR snapshots g. Adjacency order is copied verbatim.
func NewCSR(g *Graph) *CSR {
	n := len(g.Adj)
	c := &CSR{rowPtr: make([]int32, n+1)}
	total := 0
	for i, nbrs := range g.Adj {
		c.rowPtr[i] = int32(total)
		total += len(nbrs)
	}
	c.rowPtr[n] = int32(total)
	c.col = make([]int32, total)
	k := 0
	for _, nbrs := range g.Adj {
		for _, v := range nbrs {
			c.col[k] = int32(v)
			k++
		}
	}
	return c
}

// ErrEdgeOutOfRange is returned by NewCSRFromEdges for an endpoint outside
// [0, n).
var ErrEdgeOutOfRange = errors.New("graph: edge endpoint out of range")

// NewCSRFromEdges builds a normalized CSR over n nodes from an arbitrary
// undirected edge list: duplicate edges collapse, self-loops are dropped,
// and every adjacency row comes out sorted ascending. Endpoints outside
// [0, n) are an error. Unlike NewCSR this does not mirror a Graph's stored
// order — it defines one (the sorted order every builder in this repo
// uses).
func NewCSRFromEdges(n int, edges [][2]int) (*CSR, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: negative node count %d", ErrEdgeOutOfRange, n)
	}
	deg := make([]int32, n+1)
	for _, e := range edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			return nil, fmt.Errorf("%w: (%d,%d) with n=%d", ErrEdgeOutOfRange, e[0], e[1], n)
		}
		if e[0] == e[1] {
			continue
		}
		deg[e[0]]++
		deg[e[1]]++
	}
	c := &CSR{rowPtr: make([]int32, n+1)}
	var total int32
	for i := 0; i < n; i++ {
		c.rowPtr[i] = total
		total += deg[i]
	}
	c.rowPtr[n] = total
	c.col = make([]int32, total)
	fill := make([]int32, n)
	for _, e := range edges {
		if e[0] == e[1] {
			continue
		}
		c.col[c.rowPtr[e[0]]+fill[e[0]]] = int32(e[1])
		fill[e[0]]++
		c.col[c.rowPtr[e[1]]+fill[e[1]]] = int32(e[0])
		fill[e[1]]++
	}
	// Sort each row, then compact duplicates in place.
	w := int32(0)
	for i := 0; i < n; i++ {
		row := c.col[c.rowPtr[i]:c.rowPtr[i+1]]
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
		start := w
		for k, v := range row {
			if k > 0 && v == row[k-1] {
				continue
			}
			c.col[w] = v
			w++
		}
		c.rowPtr[i] = start
	}
	c.rowPtr[n] = w
	c.col = c.col[:w]
	return c, nil
}

// NewCSRFromParts adopts prebuilt row-pointer and column arrays as a CSR —
// the constructor for callers (the sharded detection engine) that assemble
// compacted subgraph views arc by arc and cannot afford the edge-list
// round-trip of NewCSRFromEdges. rowPtr must be monotone with rowPtr[0]==0
// and rowPtr[len-1]==len(col); col entries must lie in [0, len(rowPtr)-1).
// The slices are aliased, not copied; callers must not mutate them after.
func NewCSRFromParts(rowPtr, col []int32) (*CSR, error) {
	if len(rowPtr) == 0 {
		return nil, fmt.Errorf("graph: CSR needs at least one row pointer")
	}
	n := len(rowPtr) - 1
	if rowPtr[0] != 0 || int(rowPtr[n]) != len(col) {
		return nil, fmt.Errorf("graph: CSR row pointers do not frame the column array")
	}
	for i := 0; i < n; i++ {
		if rowPtr[i] > rowPtr[i+1] {
			return nil, fmt.Errorf("graph: CSR row %d has negative length", i)
		}
	}
	for _, v := range col {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("graph: CSR neighbor %d out of range [0,%d)", v, n)
		}
	}
	return &CSR{rowPtr: rowPtr, col: col}, nil
}

// Len returns the number of nodes.
func (c *CSR) Len() int { return len(c.rowPtr) - 1 }

// NumEdges returns the number of stored directed arcs halved — the
// undirected edge count for a symmetric CSR.
func (c *CSR) NumEdges() int { return len(c.col) / 2 }

// Neighbors returns node u's adjacency row. Callers must not mutate it.
func (c *CSR) Neighbors(u int) []int32 { return c.col[c.rowPtr[u]:c.rowPtr[u+1]] }

// Degree returns the degree of node u.
func (c *CSR) Degree(u int) int { return int(c.rowPtr[u+1] - c.rowPtr[u]) }

// RowOffset returns the position in the flat arc (column) array where node
// u's adjacency row begins: Neighbors(u)[k] is arc RowOffset(u)+k.
func (c *CSR) RowOffset(u int) int { return int(c.rowPtr[u]) }

// ArcIndex returns the position of arc u→v in the flat arc (column) array
// and whether the arc exists, by binary search — rows must be ascending
// (true for every builder in this repo). The index is stable for the CSR's
// lifetime, so callers can address arc-parallel payload arrays with it
// (the flat measured-distance table of internal/core).
func (c *CSR) ArcIndex(u, v int) (int, bool) {
	row := c.col[c.rowPtr[u]:c.rowPtr[u+1]]
	k := sort.Search(len(row), func(i int) bool { return row[i] >= int32(v) })
	if k < len(row) && row[k] == int32(v) {
		return int(c.rowPtr[u]) + k, true
	}
	return 0, false
}

// NodeSet is a bitset node filter — the hot-path replacement for the
// func(int) bool closures of BFSHops and friends. The zero value is an
// empty set. A nil *NodeSet passed to a traversal admits every node.
type NodeSet struct {
	words []uint64
}

// NewNodeSet returns an empty set with capacity for nodes [0, n).
func NewNodeSet(n int) *NodeSet {
	return &NodeSet{words: make([]uint64, (n+63)/64)}
}

// NodeSetOf builds a set holding exactly the indices marked true.
func NodeSetOf(member []bool) *NodeSet {
	s := NewNodeSet(len(member))
	for i, b := range member {
		if b {
			s.words[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	return s
}

// Reset clears the set and re-sizes it for nodes [0, n), reusing the
// backing array when possible.
func (s *NodeSet) Reset(n int) {
	w := (n + 63) / 64
	if cap(s.words) < w {
		s.words = make([]uint64, w)
		return
	}
	s.words = s.words[:w]
	for i := range s.words {
		s.words[i] = 0
	}
}

// Add inserts u; out-of-capacity or negative indices are ignored.
func (s *NodeSet) Add(u int) {
	if u >= 0 && u>>6 < len(s.words) {
		s.words[u>>6] |= 1 << (uint(u) & 63)
	}
}

// Has reports membership; indices outside the set's capacity are out.
func (s *NodeSet) Has(u int) bool {
	return u >= 0 && u>>6 < len(s.words) && s.words[u>>6]&(1<<(uint(u)&63)) != 0
}

// Count returns the number of members.
func (s *NodeSet) Count() int {
	total := 0
	for _, w := range s.words {
		for ; w != 0; w &= w - 1 {
			total++
		}
	}
	return total
}

// Func adapts the set to the closure-filter signature of the slice-backed
// traversals, for call sites bridging the two APIs.
func (s *NodeSet) Func() func(int) bool {
	if s == nil {
		return All
	}
	return s.Has
}

// Scratch is the reusable state of one traversal stream: distance and
// parent arrays, the FIFO frontier, and epoch-stamped visited marks, so a
// steady-state BFS allocates nothing (mirroring the UBFScratch pattern of
// internal/core). A Scratch serves one goroutine; traversals on the same
// CSR from different goroutines each need their own.
//
// Runs and Visited accumulate across calls — the substrate's work
// counters, exported by the mesh pipeline as the bfs_runs and
// bfs_nodes_visited observability counters.
type Scratch struct {
	dist   []int32
	parent []int32
	order  []int32 // visited nodes in expansion order; doubles as the queue
	mark   []uint32
	epoch  uint32

	// Runs counts traversals started, Visited the nodes they reached.
	Runs    int64
	Visited int64
}

// begin sizes the buffers for n nodes and opens a fresh epoch.
func (s *Scratch) begin(n int) {
	if len(s.mark) < n {
		s.mark = make([]uint32, n)
		s.dist = make([]int32, n)
		s.parent = make([]int32, n)
		s.epoch = 0
	}
	s.epoch++
	if s.epoch == 0 { // wrapped: clear once and restart
		for i := range s.mark {
			s.mark[i] = 0
		}
		s.epoch = 1
	}
	s.order = s.order[:0]
	s.Runs++
}

func (s *Scratch) seen(u int) bool { return s.mark[u] == s.epoch }

func (s *Scratch) visit(u int, d, parent int32) {
	s.mark[u] = s.epoch
	s.dist[u] = d
	s.parent[u] = parent
	s.order = append(s.order, int32(u))
}

// Dist returns u's hop distance from the last traversal's sources, or
// Unreachable when the traversal did not reach u (or u is out of range).
func (s *Scratch) Dist(u int) int {
	if u < 0 || u >= len(s.mark) || s.mark[u] != s.epoch {
		return Unreachable
	}
	return int(s.dist[u])
}

// Reached lists the nodes the last traversal visited, in deterministic
// expansion order. The slice aliases the scratch and is valid until the
// next traversal.
func (s *Scratch) Reached() []int32 { return s.order }

// BFSHops runs a multi-source breadth-first search from sources over the
// subgraph induced by allowed (nil admits every node), out to at most
// maxHops (negative means unlimited). Results land in s: Reached lists the
// visited nodes in expansion order, Dist their hop distances. Sources
// rejected by allowed are ignored. The expansion is deterministic: FIFO
// frontier, neighbors in stored adjacency order.
func (c *CSR) BFSHops(s *Scratch, sources []int, allowed *NodeSet, maxHops int) {
	n := c.Len()
	s.begin(n)
	for _, src := range sources {
		if src < 0 || src >= n || s.seen(src) {
			continue
		}
		if allowed != nil && !allowed.Has(src) {
			continue
		}
		s.visit(src, 0, Unreachable)
	}
	c.expand(s, allowed, maxHops, -1)
	s.Visited += int64(len(s.order))
}

// expand drains the frontier; stopAt >= 0 halts as soon as that node is
// discovered (its distance and parent are already final — BFS assigns both
// at discovery time, so an early exit cannot change the extracted path).
func (c *CSR) expand(s *Scratch, allowed *NodeSet, maxHops int, stopAt int) {
	for head := 0; head < len(s.order); head++ {
		u := s.order[head]
		du := s.dist[u]
		if maxHops >= 0 && int(du) >= maxHops {
			continue
		}
		for _, v := range c.col[c.rowPtr[u]:c.rowPtr[u+1]] {
			if s.seen(int(v)) {
				continue
			}
			if allowed != nil && !allowed.Has(int(v)) {
				continue
			}
			s.visit(int(v), du+1, int32(u))
			if int(v) == stopAt {
				return
			}
		}
	}
}

// ShortestPath appends to out one shortest path (by hop count) from u to v
// through the subgraph induced by allowed, inclusive of both endpoints,
// and returns the extended slice — nil when no path exists. The result is
// bit-identical to Graph.ShortestPath on the graph the CSR was built from:
// same FIFO expansion, same adjacency scan order, same lowest-ID parent
// tie-break.
func (c *CSR) ShortestPath(s *Scratch, u, v int, allowed *NodeSet, out []int) []int {
	n := c.Len()
	if u < 0 || u >= n || v < 0 || v >= n {
		return nil
	}
	if allowed != nil && (!allowed.Has(u) || !allowed.Has(v)) {
		return nil
	}
	if u == v {
		return append(out, u)
	}
	s.begin(n)
	s.visit(u, 0, Unreachable)
	c.expand(s, allowed, -1, v)
	s.Visited += int64(len(s.order))
	if !s.seen(v) {
		return nil
	}
	return appendPath(s.parent, u, v, out)
}

// HopDistance returns the hop distance between u and v through the
// subgraph induced by allowed, or Unreachable when disconnected.
func (c *CSR) HopDistance(s *Scratch, u, v int, allowed *NodeSet) int {
	n := c.Len()
	if u < 0 || u >= n || v < 0 || v >= n {
		return Unreachable
	}
	if allowed != nil && (!allowed.Has(u) || !allowed.Has(v)) {
		return Unreachable
	}
	if u == v {
		return 0
	}
	s.begin(n)
	s.visit(u, 0, Unreachable)
	c.expand(s, allowed, -1, v)
	s.Visited += int64(len(s.order))
	if !s.seen(v) {
		return Unreachable
	}
	return int(s.dist[v])
}

// appendPath reconstructs root..v from parent pointers, appending to out.
func appendPath(parent []int32, root, v int, out []int) []int {
	start := len(out)
	out = append(out, v)
	for cur := v; cur != root; {
		cur = int(parent[cur])
		out = append(out, cur)
	}
	for i, j := start, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// SPT is one root's complete shortest-path tree over an induced subgraph:
// the frozen result of the deterministic BFS, from which any root-to-node
// path extracts in O(path length) with no further traversal. Trees are
// immutable once built and safe for concurrent readers.
type SPT struct {
	// Root is the tree's source node.
	Root int

	dist   []int32 // full length; Unreachable where the BFS did not reach
	parent []int32
	order  []int32 // reached nodes in expansion order
}

// DistTo returns v's hop distance from the root, or Unreachable.
func (t *SPT) DistTo(v int) int {
	if v < 0 || v >= len(t.dist) {
		return Unreachable
	}
	return int(t.dist[v])
}

// PathTo appends the root→v path to out and returns the extended slice,
// nil when v is unreachable. The path is bit-identical to
// Graph.ShortestPath(root, v, allowed): the tree stores exactly the parent
// pointers that truncated search would have assigned, because BFS parents
// are fixed at discovery time and discovery order does not depend on when
// the search stops.
func (t *SPT) PathTo(v int, out []int) []int {
	if v < 0 || v >= len(t.dist) || t.dist[v] == int32(Unreachable) {
		return nil
	}
	if v == t.Root {
		return append(out, v)
	}
	return appendPath(t.parent, t.Root, v, out)
}

// Reached lists the nodes the tree spans, in expansion order.
func (t *SPT) Reached() []int32 { return t.order }

// SPTStats reports the traversal work a BuildSPTs call performed.
type SPTStats struct {
	// Runs counts BFS traversals (one per root).
	Runs int64
	// Visited counts nodes reached, summed over the trees.
	Visited int64
}

// BuildSPTs computes one shortest-path tree per root over the subgraph
// induced by allowed, in parallel on the given worker count (<= 0 means
// GOMAXPROCS). Roots outside the graph or the filter yield empty trees
// (every node Unreachable). The output depends only on the inputs, never
// on scheduling: each tree is an independent deterministic BFS.
func BuildSPTs(c *CSR, roots []int, allowed *NodeSet, workers int) ([]*SPT, SPTStats, error) {
	n := c.Len()
	trees := make([]*SPT, len(roots))
	visited := make([]int64, len(roots))
	err := par.For(len(roots), workers, func(_, i int) error {
		t := &SPT{Root: roots[i], dist: make([]int32, n), parent: make([]int32, n)}
		for j := range t.dist {
			t.dist[j] = int32(Unreachable)
			t.parent[j] = int32(Unreachable)
		}
		root := roots[i]
		if root >= 0 && root < n && (allowed == nil || allowed.Has(root)) {
			t.dist[root] = 0
			t.order = append(make([]int32, 0, 16), int32(root))
			for head := 0; head < len(t.order); head++ {
				u := t.order[head]
				du := t.dist[u]
				for _, v := range c.col[c.rowPtr[u]:c.rowPtr[u+1]] {
					if t.dist[v] != int32(Unreachable) {
						continue
					}
					if allowed != nil && !allowed.Has(int(v)) {
						continue
					}
					t.dist[v] = du + 1
					t.parent[v] = int32(u)
					t.order = append(t.order, v)
				}
			}
		}
		visited[i] = int64(len(t.order))
		trees[i] = t
		return nil
	})
	if err != nil {
		return nil, SPTStats{}, err
	}
	st := SPTStats{Runs: int64(len(roots))}
	for _, v := range visited {
		st.Visited += v
	}
	return trees, st, nil
}

// Validate checks CSR structural invariants — monotone row pointers in
// range, neighbor indices in range — and, for normalized CSRs (built by
// NewCSRFromEdges), sorted duplicate-free self-loop-free rows plus
// symmetry. It exists for the construction fuzz target.
func (c *CSR) Validate(normalized bool) error {
	n := c.Len()
	if n < 0 || c.rowPtr[0] != 0 || int(c.rowPtr[n]) != len(c.col) {
		return fmt.Errorf("graph: CSR row pointers corrupt")
	}
	for i := 0; i < n; i++ {
		if c.rowPtr[i] > c.rowPtr[i+1] {
			return fmt.Errorf("graph: CSR row %d has negative length", i)
		}
	}
	for i := 0; i < n; i++ {
		row := c.Neighbors(i)
		for k, v := range row {
			if v < 0 || int(v) >= n {
				return fmt.Errorf("graph: CSR row %d neighbor %d out of range", i, v)
			}
			if !normalized {
				continue
			}
			if int(v) == i {
				return fmt.Errorf("graph: CSR row %d keeps a self-loop", i)
			}
			if k > 0 && row[k-1] >= v {
				return fmt.Errorf("graph: CSR row %d not strictly sorted", i)
			}
			nb := c.Neighbors(int(v))
			at := sort.Search(len(nb), func(j int) bool { return nb[j] >= int32(i) })
			if at == len(nb) || nb[at] != int32(i) {
				return fmt.Errorf("graph: CSR edge (%d,%d) not symmetric", i, v)
			}
		}
	}
	if len(c.col) > math.MaxInt32 {
		return fmt.Errorf("graph: CSR arc count overflows int32")
	}
	return nil
}
