package graph

import (
	"math/rand"
	"testing"
)

// path builds a path graph 0-1-2-...-n-1.
func pathGraph(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// grid builds a w×h grid graph; node (x,y) has index y*w+x.
func gridGraph(w, h int) *Graph {
	g := New(w * h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			if x+1 < w {
				g.AddEdge(i, i+1)
			}
			if y+1 < h {
				g.AddEdge(i, i+w)
			}
		}
	}
	return g
}

func TestBasicAccessors(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	if g.Len() != 4 {
		t.Errorf("Len = %d", g.Len())
	}
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	if g.Degree(0) != 2 {
		t.Errorf("Degree(0) = %d", g.Degree(0))
	}
	if g.AvgDegree() != 2 {
		t.Errorf("AvgDegree = %v", g.AvgDegree())
	}
	if New(0).AvgDegree() != 0 {
		t.Error("empty graph AvgDegree != 0")
	}
}

func TestBFSHopsPath(t *testing.T) {
	g := pathGraph(5)
	dist := g.BFSHops([]int{0}, All, -1)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
}

func TestBFSHopsMaxHops(t *testing.T) {
	g := pathGraph(6)
	dist := g.BFSHops([]int{0}, All, 2)
	want := []int{0, 1, 2, Unreachable, Unreachable, Unreachable}
	for i := range want {
		if dist[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want[i])
		}
	}
}

func TestBFSHopsMultiSource(t *testing.T) {
	g := pathGraph(7)
	dist := g.BFSHops([]int{0, 6}, All, -1)
	want := []int{0, 1, 2, 3, 2, 1, 0}
	for i := range want {
		if dist[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want[i])
		}
	}
}

func TestBFSHopsFiltered(t *testing.T) {
	g := pathGraph(5)
	blocked := func(i int) bool { return i != 2 }
	dist := g.BFSHops([]int{0}, blocked, -1)
	if dist[2] != Unreachable || dist[3] != Unreachable || dist[4] != Unreachable {
		t.Errorf("filter violated: %v", dist)
	}
	// A source rejected by the filter contributes nothing.
	dist = g.BFSHops([]int{2}, blocked, -1)
	for i, d := range dist {
		if d != Unreachable {
			t.Errorf("rejected source reached node %d (dist %d)", i, d)
		}
	}
	// Out-of-range sources are ignored, and duplicates are harmless.
	dist = g.BFSHops([]int{-1, 99, 0, 0}, All, -1)
	if dist[0] != 0 || dist[4] != 4 {
		t.Errorf("robust sources: %v", dist)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	// 5, 6 isolated.
	comps := g.ConnectedComponents(All)
	if len(comps) != 4 {
		t.Fatalf("got %d components, want 4", len(comps))
	}
	sizes := []int{len(comps[0]), len(comps[1]), len(comps[2]), len(comps[3])}
	want := []int{3, 2, 1, 1}
	for i := range want {
		if sizes[i] != want[i] {
			t.Errorf("component %d size = %d, want %d", i, sizes[i], want[i])
		}
	}
}

func TestConnectedComponentsFiltered(t *testing.T) {
	g := pathGraph(5)
	// Excluding node 2 splits the path in two.
	comps := g.ConnectedComponents(func(i int) bool { return i != 2 })
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	total := 0
	for _, c := range comps {
		total += len(c)
		for _, v := range c {
			if v == 2 {
				t.Error("filtered node appears in a component")
			}
		}
	}
	if total != 4 {
		t.Errorf("total member count = %d, want 4", total)
	}
}

func TestShortestPath(t *testing.T) {
	g := gridGraph(4, 4)
	path := g.ShortestPath(0, 15, All)
	if len(path) != 7 { // 6 hops on a 4x4 grid corner to corner
		t.Fatalf("path length = %d, want 7: %v", len(path), path)
	}
	if path[0] != 0 || path[len(path)-1] != 15 {
		t.Errorf("endpoints wrong: %v", path)
	}
	// Consecutive nodes must be adjacent.
	for i := 0; i+1 < len(path); i++ {
		adjacent := false
		for _, v := range g.Adj[path[i]] {
			if v == path[i+1] {
				adjacent = true
				break
			}
		}
		if !adjacent {
			t.Errorf("non-adjacent step %d -> %d", path[i], path[i+1])
		}
	}
}

func TestShortestPathEdgeCases(t *testing.T) {
	g := pathGraph(4)
	if p := g.ShortestPath(1, 1, All); len(p) != 1 || p[0] != 1 {
		t.Errorf("self path = %v", p)
	}
	if p := g.ShortestPath(0, 3, func(i int) bool { return i != 2 }); p != nil {
		t.Errorf("blocked path = %v, want nil", p)
	}
	if p := g.ShortestPath(-1, 2, All); p != nil {
		t.Errorf("bad source path = %v", p)
	}
	if p := g.ShortestPath(0, 99, All); p != nil {
		t.Errorf("bad target path = %v", p)
	}
	if p := g.ShortestPath(2, 2, func(i int) bool { return false }); p != nil {
		t.Errorf("filtered self path = %v", p)
	}
}

func TestShortestPathDeterministic(t *testing.T) {
	g := gridGraph(5, 5)
	first := g.ShortestPath(0, 24, All)
	for i := 0; i < 10; i++ {
		again := g.ShortestPath(0, 24, All)
		if len(again) != len(first) {
			t.Fatalf("nondeterministic length: %v vs %v", again, first)
		}
		for j := range again {
			if again[j] != first[j] {
				t.Fatalf("nondeterministic path: %v vs %v", again, first)
			}
		}
	}
}

func TestHopDistance(t *testing.T) {
	g := pathGraph(6)
	if d := g.HopDistance(0, 5, All); d != 5 {
		t.Errorf("HopDistance = %d, want 5", d)
	}
	if d := g.HopDistance(3, 3, All); d != 0 {
		t.Errorf("self distance = %d", d)
	}
	if d := g.HopDistance(0, 5, func(i int) bool { return i != 3 }); d != Unreachable {
		t.Errorf("blocked distance = %d", d)
	}
	if d := g.HopDistance(3, 3, func(i int) bool { return false }); d != Unreachable {
		t.Errorf("filtered self distance = %d", d)
	}
}

// Property: BFS distances satisfy the triangle inequality along edges —
// |dist(u) - dist(v)| <= 1 for every edge (u,v) with both ends reached.
func TestBFSDistanceLipschitzProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 20; trial++ {
		n := 30 + rng.Intn(70)
		g := New(n)
		for e := 0; e < 3*n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		src := rng.Intn(n)
		dist := g.BFSHops([]int{src}, All, -1)
		for u := range g.Adj {
			for _, v := range g.Adj[u] {
				du, dv := dist[u], dist[v]
				if du == Unreachable || dv == Unreachable {
					if du != dv {
						t.Fatalf("edge (%d,%d) crosses reachability boundary", u, v)
					}
					continue
				}
				if du-dv > 1 || dv-du > 1 {
					t.Fatalf("edge (%d,%d) violates Lipschitz: %d vs %d", u, v, du, dv)
				}
			}
		}
	}
}

// Property: shortest-path length equals BFS hop distance.
func TestShortestPathLengthMatchesBFSProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(40)
		g := New(n)
		for e := 0; e < 2*n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		u, v := rng.Intn(n), rng.Intn(n)
		want := g.HopDistance(u, v, All)
		path := g.ShortestPath(u, v, All)
		if want == Unreachable {
			if path != nil {
				t.Fatalf("path found for unreachable pair: %v", path)
			}
			continue
		}
		if len(path)-1 != want {
			t.Fatalf("path length %d, BFS distance %d", len(path)-1, want)
		}
	}
}
