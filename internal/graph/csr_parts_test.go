package graph

// Tests for the adopt-constructor (NewCSRFromParts), the arc addressing
// helpers (RowOffset/ArcIndex), and Scratch reuse across CSRs of different
// sizes — the access pattern of the sharded detection engine, which walks
// one Scratch over per-shard views of varying node counts.

import "testing"

func TestNewCSRFromParts(t *testing.T) {
	// A valid 3-node path graph, rows ascending.
	rowPtr := []int32{0, 1, 3, 4}
	col := []int32{1, 0, 2, 1}
	c, err := NewCSRFromParts(rowPtr, col)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 || c.Degree(1) != 2 {
		t.Fatalf("Len=%d Degree(1)=%d", c.Len(), c.Degree(1))
	}
	if err := c.Validate(true); err != nil {
		t.Fatal(err)
	}
	// The empty graph: one row pointer, no arcs.
	if e, err := NewCSRFromParts([]int32{0}, nil); err != nil || e.Len() != 0 {
		t.Fatalf("empty graph: %v", err)
	}

	bad := []struct {
		name   string
		rowPtr []int32
		col    []int32
	}{
		{"no row pointers", nil, nil},
		{"first pointer nonzero", []int32{1, 2}, []int32{0, 0}},
		{"last pointer misframes", []int32{0, 1}, []int32{0, 0}},
		{"negative row length", []int32{0, 2, 1, 4}, []int32{1, 2, 0, 0}},
		{"neighbor out of range", []int32{0, 1, 2}, []int32{1, 2}},
		{"negative neighbor", []int32{0, 1, 2}, []int32{1, -1}},
	}
	for _, tc := range bad {
		if _, err := NewCSRFromParts(tc.rowPtr, tc.col); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestRowOffsetArcIndex(t *testing.T) {
	c, err := NewCSRFromEdges(6, [][2]int{{0, 1}, {0, 3}, {0, 5}, {1, 2}, {2, 3}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < c.Len(); u++ {
		row := c.Neighbors(u)
		off := c.RowOffset(u)
		for k, v := range row {
			idx, ok := c.ArcIndex(u, int(v))
			if !ok || idx != off+k {
				t.Fatalf("ArcIndex(%d,%d) = (%d,%v), want (%d,true)", u, v, idx, ok, off+k)
			}
		}
		// Non-neighbors (including u itself) must miss.
		for v := 0; v < c.Len(); v++ {
			if _, ok := c.ArcIndex(u, v); ok != contains(row, int32(v)) {
				t.Fatalf("ArcIndex(%d,%d) existence = %v", u, v, ok)
			}
		}
	}
}

func contains(row []int32, v int32) bool {
	for _, x := range row {
		if x == v {
			return true
		}
	}
	return false
}

// TestScratchCrossSizeReuse drives one Scratch across CSRs of different
// node counts, the sharded engine's pattern. Shrinking then growing again
// must not resurrect stale marks: begin() reallocates only when the mark
// array is too small, so marks written for a big graph survive while a
// small graph is served and must still be dead when the big graph returns.
func TestScratchCrossSizeReuse(t *testing.T) {
	big := NewCSR(gridGraph(12, 12))   // 144 nodes
	small := NewCSR(pathGraph(5))      // 5 nodes
	other := NewCSR(gridGraph(10, 10)) // 100 nodes

	var s Scratch
	big.BFSHops(&s, []int{0}, nil, -1)
	if s.Dist(143) < 0 {
		t.Fatal("big grid not fully reached")
	}
	small.BFSHops(&s, []int{4}, nil, 1)
	if s.Dist(4) != 0 || s.Dist(2) != Unreachable {
		t.Fatalf("small graph dists wrong: %d %d", s.Dist(4), s.Dist(2))
	}
	// Back to a big graph: nodes beyond the small graph's range carry marks
	// from two epochs ago and must read as unreached until visited anew.
	other.BFSHops(&s, []int{99}, nil, 0)
	if s.Dist(99) != 0 {
		t.Fatalf("dist(99) = %d, want 0", s.Dist(99))
	}
	for _, u := range []int{0, 50, 98} {
		if s.Dist(u) != Unreachable {
			t.Fatalf("stale mark leaked after cross-size reuse: dist(%d) = %d", u, s.Dist(u))
		}
	}
	if got := len(s.Reached()); got != 1 {
		t.Fatalf("reached %d nodes, want 1", got)
	}
}

// TestScratchCrossSizeAllocsZero pins the steady-state allocation count of
// the cross-size pattern: once the scratch has served the largest view,
// alternating between views of different sizes allocates nothing.
func TestScratchCrossSizeAllocsZero(t *testing.T) {
	big := NewCSR(gridGraph(12, 12))
	small := NewCSR(pathGraph(5))
	var s Scratch
	big.BFSHops(&s, []int{0}, nil, -1) // size for the largest view
	srcsBig, srcsSmall := []int{0}, []int{0}
	allocs := testing.AllocsPerRun(100, func() {
		small.BFSHops(&s, srcsSmall, nil, -1)
		big.BFSHops(&s, srcsBig, nil, 2)
	})
	if allocs != 0 {
		t.Errorf("cross-size warm BFS allocates %.1f per run, want 0", allocs)
	}
}
