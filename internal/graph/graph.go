// Package graph provides the unweighted-graph utilities shared by the
// boundary-detection pipeline: breadth-first hop distances, connected
// components, and shortest paths, all restricted to arbitrary node subsets
// (the algorithms of the paper constantly operate on the subgraph induced by
// boundary nodes).
package graph

// Graph is an undirected graph as adjacency lists. Adj[i] lists the
// neighbors of node i. The graph does not own the slices; callers must not
// mutate them while algorithms run.
type Graph struct {
	Adj [][]int
}

// New returns a graph with n nodes and no edges.
func New(n int) *Graph {
	return &Graph{Adj: make([][]int, n)}
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.Adj) }

// AddEdge inserts the undirected edge (u, v). It does not deduplicate.
func (g *Graph) AddEdge(u, v int) {
	g.Adj[u] = append(g.Adj[u], v)
	g.Adj[v] = append(g.Adj[v], u)
}

// Degree returns the degree of node u.
func (g *Graph) Degree(u int) int { return len(g.Adj[u]) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, nbrs := range g.Adj {
		total += len(nbrs)
	}
	return total / 2
}

// AvgDegree returns the average nodal degree, or 0 for an empty graph.
func (g *Graph) AvgDegree() float64 {
	if len(g.Adj) == 0 {
		return 0
	}
	return 2 * float64(g.NumEdges()) / float64(len(g.Adj))
}

// All is a node filter admitting every node.
func All(int) bool { return true }

// InSet returns a filter admitting exactly the nodes marked true in member.
// Nodes outside the slice bounds are rejected.
func InSet(member []bool) func(int) bool {
	return func(i int) bool { return i >= 0 && i < len(member) && member[i] }
}

// Unreachable marks nodes not reached by a BFS.
const Unreachable = -1

// BFSHops runs a multi-source breadth-first search from sources over the
// subgraph induced by allowed, out to at most maxHops (negative means
// unlimited). It returns the hop distance for every node, Unreachable where
// the search did not reach. Sources rejected by allowed are ignored.
func (g *Graph) BFSHops(sources []int, allowed func(int) bool, maxHops int) []int {
	dist := make([]int, len(g.Adj))
	for i := range dist {
		dist[i] = Unreachable
	}
	queue := make([]int, 0, len(sources))
	for _, s := range sources {
		if s < 0 || s >= len(g.Adj) || !allowed(s) || dist[s] == 0 {
			continue
		}
		dist[s] = 0
		queue = append(queue, s)
	}
	// Head-index dequeue: reslicing the front off the queue would keep
	// the consumed prefix live in the backing array while every append
	// still re-grows it, so the queue churns one grown array per call.
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		if maxHops >= 0 && dist[u] >= maxHops {
			continue
		}
		for _, v := range g.Adj[u] {
			if dist[v] != Unreachable || !allowed(v) {
				continue
			}
			dist[v] = dist[u] + 1
			queue = append(queue, v)
		}
	}
	return dist
}

// BFSHopsScratch is BFSHops with caller-owned scratch state: the
// distance, queue, and visited-mark buffers live in s and are reused
// across calls, so the steady-state cost allocates nothing. After it
// returns, s.Reached() lists the visited nodes in expansion order and
// s.Dist is valid for exactly those nodes (Unreachable elsewhere).
func (g *Graph) BFSHopsScratch(s *Scratch, sources []int, allowed func(int) bool, maxHops int) {
	s.begin(len(g.Adj))
	for _, src := range sources {
		if src < 0 || src >= len(g.Adj) || !allowed(src) || s.seen(src) {
			continue
		}
		s.visit(src, 0, Unreachable)
	}
	for head := 0; head < len(s.order); head++ {
		u := int(s.order[head])
		du := s.dist[u]
		if maxHops >= 0 && int(du) >= maxHops {
			continue
		}
		for _, v := range g.Adj[u] {
			if s.seen(v) || !allowed(v) {
				continue
			}
			s.visit(v, du+1, int32(u))
		}
	}
	s.Visited += int64(len(s.order))
}

// ConnectedComponents returns the connected components of the subgraph
// induced by allowed. Components are listed in ascending order of their
// smallest member; members appear in discovery order.
func (g *Graph) ConnectedComponents(allowed func(int) bool) [][]int {
	seen := make([]bool, len(g.Adj))
	var comps [][]int
	for start := range g.Adj {
		if seen[start] || !allowed(start) {
			continue
		}
		comp := []int{start}
		seen[start] = true
		for i := 0; i < len(comp); i++ {
			for _, v := range g.Adj[comp[i]] {
				if !seen[v] && allowed(v) {
					seen[v] = true
					comp = append(comp, v)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// ShortestPath returns one shortest path (by hop count) from u to v through
// the subgraph induced by allowed, inclusive of both endpoints. Ties are
// broken toward lower node IDs, making the result deterministic — the
// CDM construction relies on all nodes agreeing on "the" shortest path.
// It returns nil when no path exists.
func (g *Graph) ShortestPath(u, v int, allowed func(int) bool) []int {
	if u < 0 || u >= len(g.Adj) || v < 0 || v >= len(g.Adj) || !allowed(u) || !allowed(v) {
		return nil
	}
	if u == v {
		return []int{u}
	}
	parent := make([]int, len(g.Adj))
	dist := make([]int, len(g.Adj))
	for i := range parent {
		parent[i] = Unreachable
		dist[i] = Unreachable
	}
	dist[u] = 0
	queue := make([]int, 1, 16)
	queue[0] = u
	for head := 0; head < len(queue) && dist[v] == Unreachable; head++ {
		cur := queue[head]
		// Deterministic expansion: visit neighbors in ascending ID so
		// the parent of each node is the lowest-ID predecessor at its
		// BFS depth. Adjacency lists are sorted by the builders in
		// this repo; sort defensively only if needed would cost more
		// than it buys here.
		for _, nxt := range g.Adj[cur] {
			if dist[nxt] != Unreachable || !allowed(nxt) {
				continue
			}
			dist[nxt] = dist[cur] + 1
			parent[nxt] = cur
			queue = append(queue, nxt)
		}
	}
	if dist[v] == Unreachable {
		return nil
	}
	path := []int{v}
	for cur := v; cur != u; {
		cur = parent[cur]
		path = append(path, cur)
	}
	// Reverse in place.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// HopDistance returns the hop distance between u and v through the subgraph
// induced by allowed, or Unreachable when disconnected.
func (g *Graph) HopDistance(u, v int, allowed func(int) bool) int {
	if u == v {
		if u >= 0 && u < len(g.Adj) && allowed(u) {
			return 0
		}
		return Unreachable
	}
	dist := g.BFSHops([]int{u}, allowed, -1)
	if v < 0 || v >= len(dist) {
		return Unreachable
	}
	return dist[v]
}
