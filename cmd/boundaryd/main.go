// Command boundaryd is the boundary-detection server: it holds loaded
// networks as sessions and recomputes boundaries incrementally as clients
// stream join/leave/move/crash deltas.
//
// Usage:
//
//	boundaryd -addr 127.0.0.1:8338            # serve until SIGINT/SIGTERM
//	boundaryd -smoke                          # self-check and exit
//
// The API is documented in internal/serve. The shared flags (-seed,
// -workers, -shards, -trace, -pprof, -ftdc) follow the repository-wide
// convention; -workers and -shards set the per-session defaults, and
// -trace records every request span, session counter and incremental
// dirty-region counter as a JSONL trace readable with cmd/tracestat.
// -ftdc captures the same counter set plus per-stage latency histograms
// into a delta-encoded binary ring (decode with tracestat -ftdc), and
// GET /v1/metrics serves a live JSON snapshot — counter totals and
// latency quantiles, global and per session.
//
// -smoke runs the serve smoke harness instead of listening forever: it
// starts the server on an ephemeral port, POSTs a generated network over
// real HTTP, streams scripted delta batches, and after every batch diffs
// the served boundary groups — and the reconstructed boundary surfaces
// from GET /v1/sessions/{id}/mesh — against a from-scratch recompute of
// the same active node set, landmark positions compared exactly. It also
// checks that a topology-only detector session answers the mesh route
// with 501. Any divergence, HTTP failure, or (with -trace) trace schema
// violation exits nonzero — `make serve-smoke` and `make mesh-smoke` wire
// this into CI.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/export"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/netgen"
	"repro/internal/serve"
)

type options struct {
	Addr        string
	MaxSessions int
	Smoke       bool
	SmokeScale  float64
	SmokeDeltas int
	cli.Common

	// shutdown, when non-nil, substitutes for the process signals so
	// tests can stop a serving run deterministically.
	shutdown <-chan struct{}
}

func main() {
	var opts options
	flag.StringVar(&opts.Addr, "addr", "127.0.0.1:8338", "listen address")
	flag.IntVar(&opts.MaxSessions, "max-sessions", 0, "concurrent session cap (0 = 64)")
	flag.BoolVar(&opts.Smoke, "smoke", false, "run the serve smoke harness and exit")
	flag.Float64Var(&opts.SmokeScale, "smoke-scale", 0.08, "node-count scale of the smoke network")
	flag.IntVar(&opts.SmokeDeltas, "smoke-deltas", 30, "deltas the smoke harness streams")
	opts.Common.Register(flag.CommandLine)
	flag.Parse()

	if err := run(os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, "boundaryd:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, opts options) error {
	// Realize the shared observability options. A Close failure — a trace
	// that failed schema validation — must surface as a nonzero exit even
	// when serving succeeded, so it is only swallowed when a run error
	// already won.
	sess, err := opts.Common.Start()
	if err != nil {
		return err
	}
	// The server hosts sessions on any registered detector, so the trace
	// may legitimately carry every detector's stage vocabulary.
	sess.SetVocabStages(cli.AllDetectorVocabStages())
	closed := false
	defer func() {
		if !closed {
			sess.Close()
		}
	}()
	finish := func() error {
		closed = true
		err := sess.Close()
		if opts.FTDC != "" {
			fmt.Fprintf(w, "ftdc: %d samples, %d schema writes, %d segments in %s\n",
				sess.FTDC.Samples, sess.FTDC.SchemaWrites, sess.FTDC.Segments, opts.FTDC)
		}
		return err
	}

	srv := serve.New(serve.Options{
		Obs:         sess.Obs,
		Workers:     opts.Workers,
		Shards:      opts.Shards,
		Detector:    opts.Detector,
		MaxSessions: opts.MaxSessions,
	})

	if opts.Smoke {
		if err := smoke(w, srv, opts); err != nil {
			return err
		}
		return finish()
	}

	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(w, "boundaryd: listening on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	sigc := make(chan os.Signal, 1)
	if opts.shutdown == nil {
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sigc)
	}
	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			return err
		}
	case sig := <-sigc:
		fmt.Fprintf(w, "boundaryd: %v, shutting down\n", sig)
	case <-opts.shutdown:
		fmt.Fprintln(w, "boundaryd: shutdown requested")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	return finish()
}

// smoke drives the server end to end over real HTTP and diffs every
// served result against a from-scratch recompute.
func smoke(w io.Writer, srv *serve.Server, opts options) error {
	sc := eval.Fig10().Scaled(opts.SmokeScale)
	if opts.Seed != 0 {
		sc.Seed = opts.Seed
	}
	network, err := sc.Generate()
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}()
	base := "http://" + ln.Addr().String()

	// POST the network wrapped in the shared envelope, as netgen -out
	// writes it.
	raw, err := cli.MarshalRaw(func(buf *bytes.Buffer) error {
		return export.WriteNetworkJSON(buf, network)
	})
	if err != nil {
		return err
	}
	body, err := json.Marshal(opts.Common.NewEnvelope("netgen", nil, raw))
	if err != nil {
		return err
	}
	var created serve.Summary
	if err := postJSON(base+"/v1/sessions", body, http.StatusCreated, &created); err != nil {
		return fmt.Errorf("create session: %w", err)
	}
	fmt.Fprintf(w, "smoke: session %s nodes=%d boundary=%d groups=%d\n",
		created.Session, created.Nodes, created.BoundaryCount, created.GroupCount)

	// Mirror of the session's stable-ID state for the reference
	// recomputes and the delta script.
	pos := network.Positions()
	active := make([]bool, len(pos))
	for i := range active {
		active[i] = true
	}
	activeCount := len(pos)
	bounds := boundsOf(pos)
	cfg := opts.Common.DetectConfig()

	rng := rand.New(rand.NewSource(sc.Seed + 1))
	batch := 5
	var latencies []time.Duration
	applied := 0
	for applied < opts.SmokeDeltas {
		n := batch
		if rest := opts.SmokeDeltas - applied; rest < n {
			n = rest
		}
		var wire []map[string]any
		var joins []int
		for k := 0; k < n; k++ {
			switch op := rng.Intn(4); {
			case op == 0: // join
				p := geom.V(
					bounds[0].X+rng.Float64()*(bounds[1].X-bounds[0].X),
					bounds[0].Y+rng.Float64()*(bounds[1].Y-bounds[0].Y),
					bounds[0].Z+rng.Float64()*(bounds[1].Z-bounds[0].Z),
				)
				joins = append(joins, len(pos))
				pos = append(pos, p)
				active = append(active, true)
				activeCount++
				wire = append(wire, map[string]any{"op": "join", "pos": vec(p)})
			case op == 1: // move
				id := pickActive(rng, active)
				p := pos[id].Add(geom.V(
					(rng.Float64()-0.5)*network.Radius,
					(rng.Float64()-0.5)*network.Radius,
					(rng.Float64()-0.5)*network.Radius,
				))
				pos[id] = p
				wire = append(wire, map[string]any{"op": "move", "node": id, "pos": vec(p)})
			case activeCount > 50: // leave or crash
				id := pickActive(rng, active)
				active[id] = false
				activeCount--
				kind := "leave"
				if op == 3 {
					kind = "crash"
				}
				wire = append(wire, map[string]any{"op": kind, "node": id})
			default: // too few nodes left: join instead
				p := bounds[0].Add(bounds[1]).Scale(0.5)
				joins = append(joins, len(pos))
				pos = append(pos, p)
				active = append(active, true)
				activeCount++
				wire = append(wire, map[string]any{"op": "join", "pos": vec(p)})
			}
		}
		body, err := json.Marshal(map[string]any{"deltas": wire})
		if err != nil {
			return err
		}
		var resp struct {
			Applied int   `json:"applied"`
			Joined  []int `json:"joined"`
		}
		t0 := time.Now()
		if err := postJSON(base+"/v1/sessions/"+created.Session+"/deltas", body, http.StatusOK, &resp); err != nil {
			return fmt.Errorf("delta batch at %d: %w", applied, err)
		}
		latencies = append(latencies, time.Since(t0))
		if resp.Applied != n {
			return fmt.Errorf("batch applied %d of %d deltas", resp.Applied, n)
		}
		for k, id := range resp.Joined {
			if k >= len(joins) || joins[k] != id {
				return fmt.Errorf("join assigned ID %d, mirror predicted %v", id, joins)
			}
		}
		applied += n

		if err := diffAgainstFull(base, created.Session, pos, active, network.Radius, cfg); err != nil {
			return fmt.Errorf("after %d deltas: %w", applied, err)
		}
		// The mesh endpoint mid-delta-stream: cached or repaired, every
		// served surface must equal a from-scratch build.
		if err := diffMeshAgainstFull(base, created.Session, pos, active, network.Radius, cfg); err != nil {
			return fmt.Errorf("mesh after %d deltas: %w", applied, err)
		}
	}
	fmt.Fprintf(w, "smoke: mesh served and matched a full rebuild after every batch\n")

	// A batch that fails mid-way must apply its valid prefix and leave
	// the session fully servable: [valid move, move of a never-allocated
	// node] answers 400 with applied=1, and a GET afterwards must serve
	// exactly the prefix-applied state.
	moveID := pickActive(rng, active)
	newPos := pos[moveID].Add(geom.V(network.Radius/4, 0, 0))
	partial, err := json.Marshal(map[string]any{"deltas": []map[string]any{
		{"op": "move", "node": moveID, "pos": vec(newPos)},
		{"op": "move", "node": len(pos) + 1000, "pos": vec(newPos)},
	}})
	if err != nil {
		return err
	}
	res, err := http.Post(base+"/v1/sessions/"+created.Session+"/deltas", "application/json", bytes.NewReader(partial))
	if err != nil {
		return err
	}
	var failed struct {
		Error   string `json:"error"`
		Applied int    `json:"applied"`
	}
	err = json.NewDecoder(res.Body).Decode(&failed)
	res.Body.Close()
	if err != nil {
		return fmt.Errorf("partial batch: decode error body: %w", err)
	}
	if res.StatusCode != http.StatusBadRequest {
		return fmt.Errorf("partial batch: status %s, want 400", res.Status)
	}
	if failed.Applied != 1 || failed.Error == "" {
		return fmt.Errorf("partial batch: applied=%d error=%q, want the valid prefix (1) applied", failed.Applied, failed.Error)
	}
	pos[moveID] = newPos // mirror the applied prefix
	if err := diffAgainstFull(base, created.Session, pos, active, network.Radius, cfg); err != nil {
		return fmt.Errorf("GET after partial batch: %w", err)
	}
	fmt.Fprintln(w, "smoke: partial batch applied prefix, session still servable")

	// The metrics endpoint must be live while the session is: the global
	// view has request spans, the session view has its delta count.
	var metrics serve.MetricsResponse
	if err := getJSON(base+"/v1/metrics", &metrics); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if metrics.Global.Counters["serve/deltas_applied"] < int64(applied) {
		return fmt.Errorf("metrics: global deltas %d < %d applied", metrics.Global.Counters["serve/deltas_applied"], applied)
	}
	if len(metrics.Global.Latencies) == 0 {
		return fmt.Errorf("metrics: no global latency summaries")
	}
	if _, ok := metrics.Sessions[created.Session]; !ok {
		return fmt.Errorf("metrics: missing session %s view", created.Session)
	}

	req, err := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+created.Session, nil)
	if err != nil {
		return err
	}
	res, err = http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("delete session: status %s", res.Status)
	}

	if err := smokeCompat(w, base, body, network, opts); err != nil {
		return fmt.Errorf("compat: %w", err)
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p50 := latencies[len(latencies)/2]
	p99 := latencies[(len(latencies)*99)/100]
	fmt.Fprintf(w, "serve-smoke: OK (%d deltas, batch p50=%v p99=%v)\n", applied, p50, p99)
	return nil
}

// smokeCompat exercises the deprecated unprefixed route family and a
// non-paper detector session: the legacy list route must answer like /v1
// while flagging its deprecation, and a session created through the
// legacy create route with ?detector=sv-contour must serve that
// detector's boundary, diffed against a from-scratch recompute after a
// delta.
func smokeCompat(w io.Writer, base string, envBody []byte, network *netgen.Network, opts options) error {
	res, err := http.Get(base + "/sessions")
	if err != nil {
		return err
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("legacy list: status %s", res.Status)
	}
	if dep := res.Header.Get("Deprecation"); dep != "true" {
		return fmt.Errorf("legacy list: Deprecation header %q, want %q", dep, "true")
	}
	if link := res.Header.Get("Link"); !strings.Contains(link, "/v1/sessions") {
		return fmt.Errorf("legacy list: Link header %q lacks the /v1 successor", link)
	}

	const detector = "sv-contour"
	var created serve.Summary
	if err := postJSON(base+"/sessions?detector="+detector, envBody, http.StatusCreated, &created); err != nil {
		return fmt.Errorf("legacy create: %w", err)
	}
	if created.Detector != detector {
		return fmt.Errorf("session detector %q, want %q", created.Detector, detector)
	}

	pos := network.Positions()
	active := make([]bool, len(pos))
	for i := range active {
		active[i] = true
	}
	pos[0] = pos[0].Add(geom.V(network.Radius/3, 0, 0))
	body, err := json.Marshal(map[string]any{"deltas": []map[string]any{
		{"op": "move", "node": 0, "pos": vec(pos[0])},
	}})
	if err != nil {
		return err
	}
	if err := postJSON(base+"/v1/sessions/"+created.Session+"/deltas", body, http.StatusOK, nil); err != nil {
		return fmt.Errorf("%s delta: %w", detector, err)
	}
	cfg := opts.Common.DetectConfig()
	cfg.Detector = detector
	if err := diffAgainstFull(base, created.Session, pos, active, network.Radius, cfg); err != nil {
		return fmt.Errorf("%s session: %w", detector, err)
	}

	// sv-contour is topology-only: the mesh route must refuse with 501
	// and say why, not serve a meaningless surface.
	meshRes, err := http.Get(base + "/v1/sessions/" + created.Session + "/mesh")
	if err != nil {
		return err
	}
	meshBody, _ := io.ReadAll(io.LimitReader(meshRes.Body, 512))
	meshRes.Body.Close()
	if meshRes.StatusCode != http.StatusNotImplemented {
		return fmt.Errorf("%s mesh: status %s, want 501", detector, meshRes.Status)
	}
	if !strings.Contains(string(meshBody), "topology-only") {
		return fmt.Errorf("%s mesh: 501 body %q does not explain the capability gap", detector, meshBody)
	}

	req, err := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+created.Session, nil)
	if err != nil {
		return err
	}
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	del.Body.Close()
	if del.StatusCode != http.StatusOK {
		return fmt.Errorf("delete %s session: status %s", detector, del.Status)
	}
	fmt.Fprintf(w, "smoke: legacy aliases deprecated, %s session OK (mesh 501)\n", detector)
	return nil
}

// diffAgainstFull fetches the session detail and compares boundary and
// groups against a from-scratch detection of the mirrored active set.
func diffAgainstFull(base, id string, pos []geom.Vec3, active []bool, radius float64, cfg core.Config) error {
	var det serve.Detail
	res, err := http.Get(base + "/v1/sessions/" + id)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("get session: status %s", res.Status)
	}
	if err := json.NewDecoder(res.Body).Decode(&det); err != nil {
		return err
	}

	var nodes []netgen.Node
	var stable []int
	for i, a := range active {
		if a {
			stable = append(stable, i)
			nodes = append(nodes, netgen.Node{Pos: pos[i]})
		}
	}
	network, err := netgen.Assemble(nodes, radius)
	if err != nil {
		return err
	}
	full, err := core.Detect(network, nil, cfg)
	if err != nil {
		return err
	}
	var wantBoundary []int
	for k, b := range full.Boundary {
		if b {
			wantBoundary = append(wantBoundary, stable[k])
		}
	}
	if !equalInts(det.Boundary, wantBoundary) {
		return fmt.Errorf("boundary diverged: served %d nodes, recompute %d", len(det.Boundary), len(wantBoundary))
	}
	if len(det.Groups) != len(full.Groups) {
		return fmt.Errorf("group count diverged: served %d, recompute %d", len(det.Groups), len(full.Groups))
	}
	for g := range full.Groups {
		want := make([]int, len(full.Groups[g]))
		for k, m := range full.Groups[g] {
			want[k] = stable[m]
		}
		if !equalInts(det.Groups[g], want) {
			return fmt.Errorf("group %d diverged", g)
		}
	}
	return nil
}

// diffMeshAgainstFull fetches the session's reconstructed surfaces and
// compares them against from-scratch mesh builds over the mirrored active
// set: landmark IDs and smoothed positions (exact — float64 survives a
// JSON round-trip), edges, faces, flip counts and quality diagnostics,
// all under the stable-ID renaming.
func diffMeshAgainstFull(base, id string, pos []geom.Vec3, active []bool, radius float64, cfg core.Config) error {
	var mr struct {
		Surfaces []struct {
			Group     int `json:"group"`
			GroupSize int `json:"group_size"`
			Landmarks []struct {
				ID int     `json:"id"`
				X  float64 `json:"x"`
				Y  float64 `json:"y"`
				Z  float64 `json:"z"`
			} `json:"landmarks"`
			Edges  [][2]int `json:"edges"`
			Faces  [][3]int `json:"faces"`
			Flips  int      `json:"flips"`
			Euler  int      `json:"euler"`
			Closed bool     `json:"closed_2manifold"`
		} `json:"surfaces"`
	}
	if err := getJSON(base+"/v1/sessions/"+id+"/mesh", &mr); err != nil {
		return err
	}

	var nodes []netgen.Node
	var stable []int
	for i, a := range active {
		if a {
			stable = append(stable, i)
			nodes = append(nodes, netgen.Node{Pos: pos[i]})
		}
	}
	network, err := netgen.Assemble(nodes, radius)
	if err != nil {
		return err
	}
	full, err := core.Detect(network, nil, cfg)
	if err != nil {
		return err
	}
	want, err := mesh.BuildAll(network.G, full.Groups, mesh.Config{})
	if err != nil {
		return err
	}
	if len(mr.Surfaces) != len(want) {
		return fmt.Errorf("served %d surfaces, full build %d", len(mr.Surfaces), len(want))
	}
	for i, ws := range mr.Surfaces {
		ref := want[i]
		if ws.Group != i || ws.GroupSize != len(ref.Group) {
			return fmt.Errorf("surface %d: group %d size %d, want size %d", i, ws.Group, ws.GroupSize, len(ref.Group))
		}
		refined := mesh.RefinedPositions(ref, func(u int) geom.Vec3 { return nodes[u].Pos }, 0.7)
		if len(ws.Landmarks) != len(ref.Landmarks.IDs) {
			return fmt.Errorf("surface %d: %d landmarks, want %d", i, len(ws.Landmarks), len(ref.Landmarks.IDs))
		}
		for k, lm := range ref.Landmarks.IDs {
			wl := ws.Landmarks[k]
			if wl.ID != stable[lm] {
				return fmt.Errorf("surface %d landmark %d: id %d, want %d", i, k, wl.ID, stable[lm])
			}
			if p := refined[lm]; wl.X != p.X || wl.Y != p.Y || wl.Z != p.Z {
				return fmt.Errorf("surface %d landmark %d: position diverged", i, k)
			}
		}
		if len(ws.Edges) != len(ref.Edges) || len(ws.Faces) != len(ref.Faces) {
			return fmt.Errorf("surface %d: %d edges %d faces, want %d/%d",
				i, len(ws.Edges), len(ws.Faces), len(ref.Edges), len(ref.Faces))
		}
		for k, e := range ref.Edges {
			if ws.Edges[k] != [2]int{stable[e[0]], stable[e[1]]} {
				return fmt.Errorf("surface %d edge %d diverged", i, k)
			}
		}
		for k, f := range ref.Faces {
			if ws.Faces[k] != [3]int{stable[f[0]], stable[f[1]], stable[f[2]]} {
				return fmt.Errorf("surface %d face %d diverged", i, k)
			}
		}
		if ws.Flips != ref.Flips || ws.Euler != ref.Quality.Euler || ws.Closed != ref.Quality.Closed2Manifold {
			return fmt.Errorf("surface %d: flips/euler/closed %d/%d/%v, want %d/%d/%v",
				i, ws.Flips, ws.Euler, ws.Closed, ref.Flips, ref.Quality.Euler, ref.Quality.Closed2Manifold)
		}
	}
	return nil
}

func getJSON(url string, out any) error {
	res, err := http.Get(url)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", res.Status)
	}
	return json.NewDecoder(res.Body).Decode(out)
}

func postJSON(url string, body []byte, wantStatus int, out any) error {
	res, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != wantStatus {
		msg, _ := io.ReadAll(io.LimitReader(res.Body, 512))
		return fmt.Errorf("status %s: %s", res.Status, msg)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(res.Body).Decode(out)
}

func vec(p geom.Vec3) map[string]float64 {
	return map[string]float64{"x": p.X, "y": p.Y, "z": p.Z}
}

func boundsOf(pos []geom.Vec3) [2]geom.Vec3 {
	lo, hi := pos[0], pos[0]
	for _, p := range pos {
		lo = geom.V(min(lo.X, p.X), min(lo.Y, p.Y), min(lo.Z, p.Z))
		hi = geom.V(max(hi.X, p.X), max(hi.Y, p.Y), max(hi.Z, p.Z))
	}
	return [2]geom.Vec3{lo, hi}
}

func pickActive(rng *rand.Rand, active []bool) int {
	for {
		id := rng.Intn(len(active))
		if active[id] {
			return id
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
