package main

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSmokeMode: the self-check harness passes against the in-tree
// engine — every batch's served boundary groups match a full recompute.
func TestSmokeMode(t *testing.T) {
	var buf bytes.Buffer
	o := options{Smoke: true, SmokeScale: 0.05, SmokeDeltas: 12}
	if err := run(&buf, o); err != nil {
		t.Fatalf("smoke failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "serve-smoke: OK") {
		t.Errorf("missing OK line:\n%s", buf.String())
	}
}

// TestSmokeWritesTrace: under -trace the smoke run records serve spans
// and incremental dirty-region counters, and Close validates the file.
func TestSmokeWritesTrace(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	var buf bytes.Buffer
	o := options{Smoke: true, SmokeScale: 0.05, SmokeDeltas: 8}
	o.Trace = trace
	if err := run(&buf, o); err != nil {
		t.Fatalf("smoke with trace failed: %v\n%s", err, buf.String())
	}
	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"serve"`, `"incremental"`, `"sessions"`, `"deltas_applied"`, `"dirty_ubf_nodes"`} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("trace missing %s", want)
		}
	}
}

// TestRejectsNegativeFlags: the shared config seam rejects negative
// -workers/-shards before the server starts.
func TestRejectsNegativeFlags(t *testing.T) {
	var buf bytes.Buffer
	o := options{Smoke: true}
	o.Workers = -1
	if err := run(&buf, o); err == nil || !strings.Contains(err.Error(), "-workers") {
		t.Fatalf("negative -workers: %v", err)
	}
	o = options{Smoke: true}
	o.Shards = -2
	if err := run(&buf, o); err == nil || !strings.Contains(err.Error(), "-shards") {
		t.Fatalf("negative -shards: %v", err)
	}
}

// lockedWriter lets the serving goroutine and the test share the output
// buffer.
type lockedWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *lockedWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestServeAndShutdown: the serving path binds, answers, and drains
// cleanly when asked to stop.
func TestServeAndShutdown(t *testing.T) {
	stop := make(chan struct{})
	var out lockedWriter
	o := options{Addr: "127.0.0.1:0", shutdown: stop}
	done := make(chan error, 1)
	go func() { done <- run(&out, o) }()

	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address:\n%s", out.String())
		}
		if s := out.String(); strings.Contains(s, "listening on http://") {
			line := s[strings.Index(s, "http://")+len("http://"):]
			base = "http://" + strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	res, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", res.Status)
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(out.String(), "shutdown requested") {
		t.Errorf("missing shutdown line:\n%s", out.String())
	}
}
