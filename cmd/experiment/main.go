// Command experiment regenerates the paper's tables and figures. Each -run
// target corresponds to one figure of the evaluation (see DESIGN.md's
// per-experiment index) and prints an aligned text table; -csv additionally
// writes the table to a directory.
//
// Usage:
//
//	experiment -run fig1g            # Fig. 1(g): efficiency vs. error
//	experiment -run fig11a -scale 1  # Fig. 11(a): multi-scenario aggregate
//	experiment -run all -scale 0.25  # everything, at reduced size
//	experiment -run all -workers 4 -bench BENCH_run.json
//	experiment -run faults -async -trace trace.jsonl -pprof prof
//	experiment -run detectors -scale 0.25  # cross-detector comparison table
//	experiment -run fig1g -detector sv-enclosure
//
// The shared flags (-seed, -workers, -out, -trace, -pprof) follow the
// repository-wide convention (see internal/cli): -workers widens the sweep
// engine's worker pool (0 = one worker per CPU; results are identical at
// any width), -out writes the tables as a JSON envelope, -trace records
// every pipeline stage event and counter as JSONL (validated against the
// schema on exit), and -pprof captures CPU/heap profiles. -bench
// additionally writes each experiment's wall time (and, where the study
// surfaces them, UBF work counters) as a machine-readable baseline in the
// internal/bench format — the same schema `make bench` produces from the
// benchmark suite.
//
// Recorded traces carry the protocol flight recorder (per-round message
// accounting and node transitions); analyze them — convergence curves,
// anomaly scan, trace/baseline diffs — with cmd/tracestat.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/export"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/netgen"
	"repro/internal/obs"
	"repro/internal/shapes"
)

// options collects one invocation's parameters: the experiment selection
// plus the repository-wide shared flag block.
type options struct {
	Run   string
	Scale float64
	K     int
	CSV   string
	Bench string
	// Async executes the flooding phases on the asynchronous kernel —
	// detection outcomes are identical by design; combined with faults
	// (the -run faults sweep) this exercises the fully hardened path.
	Async bool
	cli.Common
}

func main() {
	var opts options
	flag.StringVar(&opts.Run, "run", "all",
		"experiment to run: fig1g|fig1h|fig1i|fig1jkl|fig6|fig7|fig8|fig9|fig10|fig11a|fig11b|fig11c|thm1|ablation|apps|mds|faults|detectors|all")
	flag.Float64Var(&opts.Scale, "scale", 1.0, "node-count scale factor (1.0 = paper size)")
	flag.IntVar(&opts.K, "k", 3, "landmark spacing for mesh construction")
	flag.StringVar(&opts.CSV, "csv", "", "directory to also write tables as CSV (optional)")
	flag.StringVar(&opts.Bench, "bench", "", "file to write a machine-readable timing baseline (BENCH_<name>.json)")
	flag.BoolVar(&opts.Async, "async", false, "run the flooding phases on the asynchronous kernel")
	opts.Common.Register(flag.CommandLine)
	flag.Parse()

	if err := run(os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, "experiment:", err)
		os.Exit(1)
	}
}

// runner executes one experiment and returns its table(s).
type table struct {
	name   string
	title  string
	header []string
	rows   [][]string
}

// tableJSON is a table's envelope payload form.
type tableJSON struct {
	Name   string     `json:"name"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

func run(w io.Writer, opts options) error {
	start := time.Now()
	sess, err := opts.Common.Start()
	if err != nil {
		return err
	}
	closed := false
	defer func() {
		if !closed {
			sess.Close()
		}
	}()

	var tables []table
	add := func(name, title string, header []string, rows [][]string) {
		tables = append(tables, table{name: name, title: title, header: header, rows: rows})
	}

	// SustainedRuns: the detector matrix reruns each cell's detection so
	// the table's p50/p99 columns measure sustained cost, not a cold run.
	eng := eval.Engine{Workers: opts.Workers, Obs: sess.Obs, SustainedRuns: 3}
	detectCfg := opts.Common.DetectConfig()
	detectCfg.Async = opts.Async
	// seed applies the shared -seed override on top of a scenario default.
	seed := func(def int64) int64 {
		if opts.Seed != 0 {
			return opts.Seed
		}
		return def
	}
	var rec bench.Recorder
	// timed wraps one experiment block, records its wall time as a
	// baseline stage, and spans it on the trace.
	timed := func(name string, f func() error) error {
		span := obs.StartLabeled(sess.Obs, obs.StageExperiment, name)
		t0 := time.Now()
		err := f()
		span.End()
		if err != nil {
			return err
		}
		rec.Record(bench.Stage{Name: name, WallNS: time.Since(t0).Nanoseconds(), Ops: 1})
		return nil
	}

	wantAll := opts.Run == "all"
	want := func(names ...string) bool {
		if wantAll {
			return true
		}
		for _, n := range names {
			if n == opts.Run {
				return true
			}
		}
		return false
	}
	known := map[string]bool{
		"fig1g": true, "fig1h": true, "fig1i": true, "fig1jkl": true,
		"fig6": true, "fig7": true, "fig8": true, "fig9": true, "fig10": true,
		"fig11a": true, "fig11b": true, "fig11c": true,
		"thm1": true, "ablation": true, "apps": true, "mds": true,
		"faults": true, "detectors": true, "all": true,
	}
	if !known[opts.Run] {
		return fmt.Errorf("unknown experiment %q", opts.Run)
	}

	levels := eval.PaperErrorLevels()
	meshCfg := mesh.Config{K: opts.K, Workers: opts.Workers}

	// Fig. 1(g)–(i): the error sweep on the Fig. 1 network.
	if want("fig1g", "fig1h", "fig1i") {
		err := timed("fig1-error-sweep", func() error {
			sc := eval.Fig1().Scaled(opts.Scale)
			fmt.Fprintf(w, "generating %s (%d nodes)...\n", sc.Name, sc.SurfaceNodes+sc.InteriorNodes)
			net, err := sc.Generate()
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "network: %v\n", net.Stats())
			sweep, err := eng.ErrorSweep(net, sc.Name, levels, detectCfg, seed(sc.Seed))
			if err != nil {
				return err
			}
			if want("fig1g") {
				h, rows := eval.EfficiencyRows(sweep)
				add("fig1g", "Fig. 1(g): boundary nodes vs. distance measurement error ("+sc.Name+")", h, rows)
			}
			if want("fig1h") {
				h, rows := eval.DistributionRows(sweep, false)
				add("fig1h", "Fig. 1(h): mistaken-node hop distribution", h, rows)
			}
			if want("fig1i") {
				h, rows := eval.DistributionRows(sweep, true)
				add("fig1i", "Fig. 1(i): missing-node hop distribution", h, rows)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}

	// Fig. 1(j)–(l): mesh quality under 0–40 % error.
	if want("fig1jkl") {
		err := timed("fig1-mesh-study", func() error {
			sc := eval.Fig1().Scaled(opts.Scale)
			shape, err := sc.MakeShape()
			if err != nil {
				return err
			}
			field, _ := shape.(shapes.DistanceField)
			net, err := sc.Generate()
			if err != nil {
				return err
			}
			points, err := eval.RunMeshErrorStudy(net, []float64{0, 0.2, 0.3, 0.4},
				detectCfg, meshCfg, seed(sc.Seed), field)
			if err != nil {
				return err
			}
			h, rows := eval.MeshErrorRows(points)
			add("fig1jkl", "Fig. 1(j)-(l): mesh quality under distance measurement error", h, rows)
			return nil
		})
		if err != nil {
			return err
		}
	}

	// Figs. 6–10: the five scenario studies.
	scenarioRuns := []struct {
		key string
		sc  eval.Scenario
	}{
		{"fig6", eval.Fig6()}, {"fig7", eval.Fig7()}, {"fig8", eval.Fig8()},
		{"fig9", eval.Fig9()}, {"fig10", eval.Fig10()},
	}
	var scenarioReports []*eval.ScenarioReport
	for _, sr := range scenarioRuns {
		if !want(sr.key) {
			continue
		}
		err := timed(sr.key+"-scenario", func() error {
			sc := sr.sc.Scaled(opts.Scale)
			fmt.Fprintf(w, "running %s (%s)...\n", sc.Name, sc.Figure)
			rep, err := eval.RunScenarioContext(context.Background(), sess.Obs, sc, 0, detectCfg, meshCfg)
			if err != nil {
				return err
			}
			scenarioReports = append(scenarioReports, rep)
			return nil
		})
		if err != nil {
			return err
		}
	}
	if len(scenarioReports) > 0 {
		h, rows := eval.ScenarioRows(scenarioReports)
		add("fig6-10", "Figs. 6-10: scenario studies (boundary detection + surface construction + routing)", h, rows)
	}

	// Fig. 11: the aggregate sweep over every scenario.
	if want("fig11a", "fig11b", "fig11c") {
		err := timed("fig11-aggregate-sweep", func() error {
			scenarios := make([]eval.Scenario, 0)
			for _, sc := range eval.AllScenarios() {
				scenarios = append(scenarios, sc.Scaled(opts.Scale))
			}
			fmt.Fprintf(w, "running aggregate sweep over %d scenarios × %d error levels...\n",
				len(scenarios), len(levels))
			agg, err := eng.AggregateSweep(scenarios, levels, detectCfg)
			if err != nil {
				return err
			}
			if want("fig11a") {
				h, rows := eval.EfficiencyRows(agg)
				add("fig11a", "Fig. 11(a): aggregate efficiency vs. distance measurement error", h, rows)
			}
			if want("fig11b") {
				h, rows := eval.DistributionRows(agg, false)
				add("fig11b", "Fig. 11(b): aggregate mistaken-node hop distribution", h, rows)
			}
			if want("fig11c") {
				h, rows := eval.DistributionRows(agg, true)
				add("fig11c", "Fig. 11(c): aggregate missing-node hop distribution", h, rows)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}

	// Theorem 1: per-node work vs. density. Recorded with the study's own
	// work counters so baselines can diff balls/checks, not just time.
	if want("thm1") {
		span := obs.StartLabeled(sess.Obs, obs.StageExperiment, "thm1-complexity")
		t0 := time.Now()
		makeNet := eval.Fig10().Scaled(opts.Scale)
		points, err := eval.RunComplexityStudy(func(deg float64) (*netgen.Network, error) {
			sc := makeNet
			sc.TargetDegree = deg
			return sc.Generate()
		}, []float64{8, 12, 18.5, 25, 35}, detectCfg)
		span.End()
		if err != nil {
			return err
		}
		st := bench.Stage{Name: "thm1-complexity", WallNS: time.Since(t0).Nanoseconds(), Ops: 1}
		for _, p := range points {
			st.BallsTested += p.TotalBalls
			st.NodesChecked += p.TotalChecks
		}
		rec.Record(st)
		h, rows := eval.ComplexityRows(points)
		add("thm1", "Theorem 1: UBF per-node work vs. nodal degree (balls ~ ρ², checks ~ ρ³)", h, rows)
	}

	// Localization-quality study: the mechanism behind Fig. 1(g)'s
	// degradation.
	if want("mds") {
		err := timed("mds-localization", func() error {
			sc := eval.Fig10().Scaled(opts.Scale)
			net, err := sc.Generate()
			if err != nil {
				return err
			}
			points, err := eval.RunLocalizationStudy(net, levels, detectCfg, seed(sc.Seed))
			if err != nil {
				return err
			}
			h, rows := eval.LocalizationRows(points)
			add("mds", "Localization quality: one-hop MDS frame error vs. ranging error", h, rows)
			return nil
		})
		if err != nil {
			return err
		}
	}

	// Surface-tool applications (Sec. I's embedding / partition / routing).
	if want("apps") {
		err := timed("surface-apps", func() error {
			var reports []*eval.SurfaceToolsReport
			for _, sc := range AppsScenarios() {
				sc = sc.Scaled(opts.Scale)
				fmt.Fprintf(w, "running surface tools on %s...\n", sc.Name)
				rep, err := eval.RunSurfaceTools(sc, meshCfg, 6)
				if err != nil {
					return err
				}
				reports = append(reports, rep)
			}
			h, rows := eval.SurfaceToolsRows(reports)
			add("apps", "Surface applications: embedding, k-way partition, greedy routing (+recovery)", h, rows)
			return nil
		})
		if err != nil {
			return err
		}
	}

	// Robustness: detection quality vs. message loss. Unbounded random
	// loss (no per-link cap), masked as far as the retransmission budget
	// allows — the degradation beyond it is the quantity of interest.
	if want("faults") {
		err := timed("fault-sweep", func() error {
			sc := eval.Fig1().Scaled(opts.Scale)
			fmt.Fprintf(w, "generating %s (%d nodes) for the loss sweep...\n",
				sc.Name, sc.SurfaceNodes+sc.InteriorNodes)
			net, err := sc.Generate()
			if err != nil {
				return err
			}
			lossRates := []float64{0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9}
			sweep, err := eng.FaultSweep(net, sc.Name, lossRates, 0, detectCfg, seed(sc.Seed))
			if err != nil {
				return err
			}
			h, rows := eval.FaultSweepRows(sweep)
			add("faults", "Robustness: detection quality vs. message loss ("+sc.Name+", exact ranging)", h, rows)
			return nil
		})
		if err != nil {
			return err
		}
	}

	// Cross-detector comparison: every registered detector over the three
	// standard fixtures, classified against ground truth with
	// vocabulary-derived message/round/work totals.
	if want("detectors") {
		// The matrix runs every registered detector under one trace, so
		// the vocabulary check must admit their union of stages.
		sess.SetVocabStages(cli.AllDetectorVocabStages())
		err := timed("detector-matrix", func() error {
			scenarios := eval.StandardFixtures()
			for i := range scenarios {
				scenarios[i] = scenarios[i].Scaled(opts.Scale)
			}
			names := core.DetectorNames()
			fmt.Fprintf(w, "running %d detectors over %d fixtures...\n", len(names), len(scenarios))
			cells, err := eng.DetectorMatrix(scenarios, names, detectCfg)
			if err != nil {
				return err
			}
			h, rows := metrics.DetectorComparisonRows(cells)
			add("detectors", "Cross-detector comparison vs. ground-truth boundary (true coordinates)", h, rows)
			return nil
		})
		if err != nil {
			return err
		}
	}

	// Ablations.
	if want("ablation") {
		err := timed("ablations", func() error {
			sc := eval.Fig1().Scaled(opts.Scale)
			net, err := sc.Generate()
			if err != nil {
				return err
			}
			rows20, err := eng.Ablations(net, 0.2, seed(sc.Seed))
			if err != nil {
				return err
			}
			h, rows := eval.AblationRows(rows20)
			add("ablation", "Ablations at 20% distance error ("+sc.Name+")", h, rows)
			return nil
		})
		if err != nil {
			return err
		}
	}

	for _, t := range tables {
		fmt.Fprintf(w, "\n== %s ==\n%s", t.title, eval.FormatTable(t.header, t.rows))
		if opts.CSV != "" {
			if err := writeCSV(opts.CSV, t); err != nil {
				return err
			}
		}
	}
	if opts.Out != "" {
		payload := make([]tableJSON, 0, len(tables))
		for _, t := range tables {
			payload = append(payload, tableJSON{Name: t.name, Title: t.title, Header: t.header, Rows: t.rows})
		}
		env := opts.Common.NewEnvelope("experiment", map[string]any{
			"run": opts.Run, "scale": opts.Scale, "k": opts.K, "async": opts.Async,
		}, payload)
		if err := cli.WriteEnvelope(opts.Out, env); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote results envelope to %s\n", opts.Out)
	}
	if opts.Bench != "" {
		name := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(opts.Bench), "BENCH_"), ".json")
		bl := bench.New(name, time.Now().UTC().Format(time.RFC3339), opts.Scale)
		bl.Stages = rec.Stages()
		if err := bl.WriteFile(opts.Bench); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote timing baseline to %s\n", opts.Bench)
	}

	// Close the session before reporting: this stops the profiles,
	// flushes the trace, and fails the run if the written JSONL does not
	// validate against the schema.
	closed = true
	if err := sess.Close(); err != nil {
		return err
	}
	if opts.Trace != "" {
		fmt.Fprintf(w, "\ntrace: %d events (%d experiment spans, %d cell spans, %d detect spans) -> %s\n",
			sess.Summary.Events, sess.Summary.Spans[obs.StageExperiment],
			sess.Summary.Spans[obs.StageCell], sess.Summary.Spans[obs.StageDetect], opts.Trace)
	}
	fmt.Fprintf(w, "\ndone in %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// AppsScenarios picks the deployments used for the surface-tools study:
// the smooth scenarios where the overlay mesh is meaningful.
func AppsScenarios() []eval.Scenario {
	return []eval.Scenario{eval.Fig6(), eval.Fig9(), eval.Fig10()}
}

func writeCSV(dir string, t table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, strings.ReplaceAll(t.name, "/", "_")+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return export.WriteCSV(f, t.header, t.rows)
}
