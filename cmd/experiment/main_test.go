package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/obs"
)

// opt builds the common tiny-run options for tests.
func opt(run string, scale float64, k int) options {
	return options{Run: run, Scale: scale, K: k}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, opt("nope", 0.1, 3)); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunFig1gTiny(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, opt("fig1g", 0.03, 3)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig. 1(g)") {
		t.Errorf("missing table title:\n%s", out)
	}
	// All 11 error levels present.
	for _, level := range []string{"0%", "50%", "100%"} {
		if !strings.Contains(out, level) {
			t.Errorf("missing level %s", level)
		}
	}
}

func TestRunScenarioAndCSV(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	o := opt("fig10", 0.05, 4)
	o.CSV = dir
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fig10-sphere") {
		t.Errorf("scenario row missing:\n%s", buf.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig6-10.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "fig10-sphere") {
		t.Errorf("CSV content wrong:\n%s", data)
	}
}

func TestRunThm1Tiny(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, opt("thm1", 0.05, 3)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Theorem 1") {
		t.Errorf("missing theorem table:\n%s", buf.String())
	}
}

func TestRunAblationTiny(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, opt("ablation", 0.03, 3)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, variant := range []string{"full-pipeline", "degree-baseline", "true-coords"} {
		if !strings.Contains(out, variant) {
			t.Errorf("missing variant %s", variant)
		}
	}
}

func TestRunFig1jklTiny(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, opt("fig1jkl", 0.03, 4)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mesh quality") {
		t.Errorf("missing mesh table:\n%s", buf.String())
	}
}

func TestRunFaultsTiny(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, opt("faults", 0.05, 3)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "message loss") {
		t.Errorf("missing table title:\n%s", out)
	}
	for _, col := range []string{"recall%", "retransmits", "abandoned"} {
		if !strings.Contains(out, col) {
			t.Errorf("missing column %s:\n%s", col, out)
		}
	}
	for _, level := range []string{"0%", "5%", "50%"} {
		if !strings.Contains(out, level) {
			t.Errorf("missing loss level %s", level)
		}
	}
}

// TestRunWritesBenchBaseline: -bench writes a loadable baseline whose thm1
// stage carries the study's UBF work counters, and -workers does not change
// the printed tables.
func TestRunWritesBenchBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_thm1.json")
	var buf bytes.Buffer
	o := opt("thm1", 0.05, 3)
	o.Workers = 2
	o.Bench = path
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	bl, err := bench.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if bl.Name != "thm1" {
		t.Errorf("baseline name %q, want thm1", bl.Name)
	}
	var thm1 *bench.Stage
	for i := range bl.Stages {
		if bl.Stages[i].Name == "thm1-complexity" {
			thm1 = &bl.Stages[i]
		}
	}
	if thm1 == nil {
		t.Fatalf("no thm1-complexity stage in %+v", bl.Stages)
	}
	if thm1.WallNS <= 0 || thm1.BallsTested <= 0 || thm1.NodesChecked <= 0 {
		t.Errorf("thm1 stage missing measurements: %+v", thm1)
	}

	var serial bytes.Buffer
	so := opt("thm1", 0.05, 3)
	so.Workers = 1
	if err := run(&serial, so); err != nil {
		t.Fatal(err)
	}
	stripDone := func(s string) string {
		lines := strings.Split(s, "\n")
		var kept []string
		for _, l := range lines {
			if l == "" || strings.HasPrefix(l, "done in ") || strings.HasPrefix(l, "wrote timing baseline") {
				continue
			}
			kept = append(kept, l)
		}
		return strings.Join(kept, "\n")
	}
	if stripDone(serial.String()) != stripDone(buf.String()) {
		t.Errorf("tables differ between -workers 1 and -workers 2:\n%s\n---\n%s",
			serial.String(), buf.String())
	}
}

// TestRunTraceAndEnvelope: a faulty async run with -trace/-out writes a
// schema-valid JSONL (per-stage spans, message counters) and a results
// envelope, and tracing does not change the printed tables.
func TestRunTraceAndEnvelope(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	outPath := filepath.Join(dir, "results.json")

	var plain bytes.Buffer
	po := opt("faults", 0.05, 3)
	po.Async = true
	if err := run(&plain, po); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	o := opt("faults", 0.05, 3)
	o.Async = true
	o.Trace = trace
	o.Out = outPath
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}

	// Tracing must not perturb the results: compare the outputs with the
	// run-specific status lines (envelope/trace paths, wall time) removed.
	tables := func(s string) string {
		var kept []string
		for _, l := range strings.Split(s, "\n") {
			if l == "" || strings.HasPrefix(l, "done in ") ||
				strings.HasPrefix(l, "wrote results") || strings.HasPrefix(l, "trace:") {
				continue
			}
			kept = append(kept, l)
		}
		return strings.Join(kept, "\n")
	}
	if tables(plain.String()) != tables(buf.String()) {
		t.Errorf("tables differ with tracing on:\n%s\n---\n%s", plain.String(), buf.String())
	}

	f, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sum, err := obs.ValidateTrace(f)
	if err != nil {
		t.Fatalf("trace failed validation: %v", err)
	}
	if sum.Events == 0 {
		t.Fatal("empty trace")
	}
	for _, s := range []obs.Stage{obs.StageDetect, obs.StageUBF, obs.StageIFF, obs.StageGrouping, obs.StageExperiment, obs.StageCell} {
		if sum.Spans[s] == 0 {
			t.Errorf("no %s spans in trace", s)
		}
	}
	// The faulty async run must account its messages through the fault
	// layer: attempts, deliveries, and (at the sweep's high loss rates)
	// drops and retransmissions.
	for _, c := range []obs.Counter{obs.CtrMsgsSent, obs.CtrMsgsDelivered, obs.CtrMsgsDropped, obs.CtrMsgsRetransmitted} {
		if sum.CounterTotal(c) == 0 {
			t.Errorf("counter %s absent from faulty-async trace", c)
		}
	}

	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	env, data, err := cli.ReadEnvelope(raw)
	if err != nil {
		t.Fatalf("results envelope: %v", err)
	}
	if env.Tool != "experiment" {
		t.Errorf("envelope tool %q, want experiment", env.Tool)
	}
	if !strings.Contains(string(data), "message loss") {
		t.Errorf("envelope payload missing table: %s", data)
	}
}
