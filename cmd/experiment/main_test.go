package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "nope", 0.1, 3, ""); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunFig1gTiny(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig1g", 0.03, 3, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig. 1(g)") {
		t.Errorf("missing table title:\n%s", out)
	}
	// All 11 error levels present.
	for _, level := range []string{"0%", "50%", "100%"} {
		if !strings.Contains(out, level) {
			t.Errorf("missing level %s", level)
		}
	}
}

func TestRunScenarioAndCSV(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run(&buf, "fig10", 0.05, 4, dir); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fig10-sphere") {
		t.Errorf("scenario row missing:\n%s", buf.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig6-10.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "fig10-sphere") {
		t.Errorf("CSV content wrong:\n%s", data)
	}
}

func TestRunThm1Tiny(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "thm1", 0.05, 3, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Theorem 1") {
		t.Errorf("missing theorem table:\n%s", buf.String())
	}
}

func TestRunAblationTiny(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "ablation", 0.03, 3, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, variant := range []string{"full-pipeline", "degree-baseline", "true-coords"} {
		if !strings.Contains(out, variant) {
			t.Errorf("missing variant %s", variant)
		}
	}
}

func TestRunFig1jklTiny(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig1jkl", 0.03, 4, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mesh quality") {
		t.Errorf("missing mesh table:\n%s", buf.String())
	}
}

func TestRunFaultsTiny(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "faults", 0.05, 3, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "message loss") {
		t.Errorf("missing table title:\n%s", out)
	}
	for _, col := range []string{"recall%", "retransmits", "abandoned"} {
		if !strings.Contains(out, col) {
			t.Errorf("missing column %s:\n%s", col, out)
		}
	}
	for _, level := range []string{"0%", "5%", "50%"} {
		if !strings.Contains(out, level) {
			t.Errorf("missing loss level %s", level)
		}
	}
}
