package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "nope", 0.1, 3, "", 0, ""); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunFig1gTiny(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig1g", 0.03, 3, "", 0, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig. 1(g)") {
		t.Errorf("missing table title:\n%s", out)
	}
	// All 11 error levels present.
	for _, level := range []string{"0%", "50%", "100%"} {
		if !strings.Contains(out, level) {
			t.Errorf("missing level %s", level)
		}
	}
}

func TestRunScenarioAndCSV(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run(&buf, "fig10", 0.05, 4, dir, 0, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fig10-sphere") {
		t.Errorf("scenario row missing:\n%s", buf.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig6-10.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "fig10-sphere") {
		t.Errorf("CSV content wrong:\n%s", data)
	}
}

func TestRunThm1Tiny(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "thm1", 0.05, 3, "", 0, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Theorem 1") {
		t.Errorf("missing theorem table:\n%s", buf.String())
	}
}

func TestRunAblationTiny(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "ablation", 0.03, 3, "", 0, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, variant := range []string{"full-pipeline", "degree-baseline", "true-coords"} {
		if !strings.Contains(out, variant) {
			t.Errorf("missing variant %s", variant)
		}
	}
}

func TestRunFig1jklTiny(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig1jkl", 0.03, 4, "", 0, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mesh quality") {
		t.Errorf("missing mesh table:\n%s", buf.String())
	}
}

func TestRunFaultsTiny(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "faults", 0.05, 3, "", 0, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "message loss") {
		t.Errorf("missing table title:\n%s", out)
	}
	for _, col := range []string{"recall%", "retransmits", "abandoned"} {
		if !strings.Contains(out, col) {
			t.Errorf("missing column %s:\n%s", col, out)
		}
	}
	for _, level := range []string{"0%", "5%", "50%"} {
		if !strings.Contains(out, level) {
			t.Errorf("missing loss level %s", level)
		}
	}
}

// TestRunWritesBenchBaseline: -bench writes a loadable baseline whose thm1
// stage carries the study's UBF work counters, and -workers does not change
// the printed tables.
func TestRunWritesBenchBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_thm1.json")
	var buf bytes.Buffer
	if err := run(&buf, "thm1", 0.05, 3, "", 2, path); err != nil {
		t.Fatal(err)
	}
	bl, err := bench.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if bl.Name != "thm1" {
		t.Errorf("baseline name %q, want thm1", bl.Name)
	}
	var thm1 *bench.Stage
	for i := range bl.Stages {
		if bl.Stages[i].Name == "thm1-complexity" {
			thm1 = &bl.Stages[i]
		}
	}
	if thm1 == nil {
		t.Fatalf("no thm1-complexity stage in %+v", bl.Stages)
	}
	if thm1.WallNS <= 0 || thm1.BallsTested <= 0 || thm1.NodesChecked <= 0 {
		t.Errorf("thm1 stage missing measurements: %+v", thm1)
	}

	var serial bytes.Buffer
	if err := run(&serial, "thm1", 0.05, 3, "", 1, ""); err != nil {
		t.Fatal(err)
	}
	stripDone := func(s string) string {
		lines := strings.Split(s, "\n")
		var kept []string
		for _, l := range lines {
			if l == "" || strings.HasPrefix(l, "done in ") || strings.HasPrefix(l, "wrote timing baseline") {
				continue
			}
			kept = append(kept, l)
		}
		return strings.Join(kept, "\n")
	}
	if stripDone(serial.String()) != stripDone(buf.String()) {
		t.Errorf("tables differ between -workers 1 and -workers 2:\n%s\n---\n%s",
			serial.String(), buf.String())
	}
}
