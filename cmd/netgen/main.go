// Command netgen generates and inspects simulated 3D wireless networks.
//
// Usage:
//
//	netgen -scenario fig6 -out net.json     # deploy and store a network
//	netgen -in net.json -stats              # inspect a stored network
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/eval"
	"repro/internal/export"
)

func main() {
	scenario := flag.String("scenario", "fig10", "deployment: fig1|fig6|fig7|fig8|fig9|fig10")
	scale := flag.Float64("scale", 1.0, "node-count scale factor")
	out := flag.String("out", "", "write the generated network as JSON to this path")
	in := flag.String("in", "", "read a network JSON instead of generating")
	flag.Parse()

	if err := run(*scenario, *scale, *out, *in); err != nil {
		fmt.Fprintln(os.Stderr, "netgen:", err)
		os.Exit(1)
	}
}

func run(scenario string, scale float64, out, in string) error {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		net, err := export.ReadNetworkJSON(f)
		if err != nil {
			return err
		}
		fmt.Printf("%s: radius=%.4f %v\n", in, net.Radius, net.Stats())
		return nil
	}

	var picked *eval.Scenario
	for _, sc := range eval.AllScenarios() {
		if sc.Name == scenario || strings.HasPrefix(sc.Name, scenario) {
			sc := sc
			picked = &sc
			break
		}
	}
	if picked == nil {
		return fmt.Errorf("unknown scenario %q", scenario)
	}
	sc := picked.Scaled(scale)
	net, err := sc.Generate()
	if err != nil {
		return err
	}
	fmt.Printf("%s (%s): radius=%.4f %v\n", sc.Name, sc.Figure, net.Radius, net.Stats())
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := export.WriteNetworkJSON(f, net); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
