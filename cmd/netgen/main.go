// Command netgen generates and inspects simulated 3D wireless networks.
//
// Usage:
//
//	netgen -scenario fig6 -out net.json     # deploy and store a network
//	netgen -in net.json                     # inspect a stored network
//
// The shared flags (-seed, -workers, -out, -trace, -pprof) follow the
// repository-wide convention (see internal/cli): -out wraps the network
// JSON in the common output envelope; -in accepts both an envelope and
// the legacy raw network JSON; -trace records the generation as a JSONL
// trace readable with cmd/tracestat.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/eval"
	"repro/internal/export"
	"repro/internal/obs"
)

// options collects one invocation's parameters: the generation selection
// plus the repository-wide shared flag block.
type options struct {
	Scenario string
	Scale    float64
	In       string
	cli.Common
}

func main() {
	var opts options
	flag.StringVar(&opts.Scenario, "scenario", "fig10", "deployment: fig1|fig6|fig7|fig8|fig9|fig10")
	flag.Float64Var(&opts.Scale, "scale", 1.0, "node-count scale factor")
	flag.StringVar(&opts.In, "in", "", "read a network (envelope or raw JSON) instead of generating")
	opts.Common.Register(flag.CommandLine)
	flag.Parse()

	if err := run(os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, "netgen:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, opts options) error {
	// Realize the shared observability options (-trace, -pprof) for both
	// paths. The inspect path used to return before the session existed,
	// so `-in net.json -trace t.jsonl` silently produced no trace and
	// skipped flag validation entirely. A Close failure — e.g. a trace
	// that could not be flushed or failed schema validation — must
	// surface as this command's nonzero exit, so it is only swallowed
	// when a run error already won.
	sess, err := opts.Common.Start()
	if err != nil {
		return err
	}
	closed := false
	defer func() {
		if !closed {
			sess.Close()
		}
	}()

	if opts.In != "" {
		if err := inspect(w, sess.Obs, opts.In); err != nil {
			return err
		}
		closed = true
		return sess.Close()
	}

	var picked *eval.Scenario
	for _, sc := range eval.AllScenarios() {
		if sc.Name == opts.Scenario || strings.HasPrefix(sc.Name, opts.Scenario) {
			sc := sc
			picked = &sc
			break
		}
	}
	if picked == nil {
		return fmt.Errorf("unknown scenario %q", opts.Scenario)
	}
	sc := picked.Scaled(opts.Scale)
	if opts.Seed != 0 {
		sc.Seed = opts.Seed
	}
	genSpan := obs.Start(sess.Obs, obs.StageExperiment)
	net, err := sc.Generate()
	genSpan.End()
	if err != nil {
		return err
	}
	obs.Add(sess.Obs, obs.StageExperiment, obs.CtrNodes, int64(net.G.Len()))
	fmt.Fprintf(w, "%s (%s): radius=%.4f %v\n", sc.Name, sc.Figure, net.Radius, net.Stats())
	if opts.Out != "" {
		raw, err := cli.MarshalRaw(func(buf *bytes.Buffer) error {
			return export.WriteNetworkJSON(buf, net)
		})
		if err != nil {
			return err
		}
		env := opts.Common.NewEnvelope("netgen", map[string]any{
			"scenario": opts.Scenario, "scale": opts.Scale,
		}, raw)
		if err := cli.WriteEnvelope(opts.Out, env); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", opts.Out)
	}
	closed = true
	return sess.Close()
}

// inspect reads a stored network — the common envelope or the legacy raw
// network JSON — and prints its stats. Only ErrNotEnvelope falls back to
// the legacy format: an envelope from another tool, or a file with
// trailing data after the envelope document, is an error, not a payload.
func inspect(w io.Writer, o obs.Observer, path string) error {
	span := obs.StartLabeled(o, obs.StageExperiment, "inspect")
	defer span.End()
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	payload := raw
	env, data, err := cli.ReadEnvelope(raw)
	switch {
	case err == nil:
		if env.Tool != "netgen" {
			return fmt.Errorf("%s: envelope from %q, not netgen", path, env.Tool)
		}
		payload = data
	case errors.Is(err, cli.ErrNotEnvelope):
		// Legacy raw network JSON: decode it as-is below.
	default:
		return fmt.Errorf("%s: %w", path, err)
	}
	net, err := export.ReadNetworkJSON(bytes.NewReader(payload))
	if err != nil {
		return err
	}
	obs.Add(o, obs.StageExperiment, obs.CtrNodes, int64(net.G.Len()))
	fmt.Fprintf(w, "%s: radius=%.4f %v\n", path, net.Radius, net.Stats())
	return nil
}
