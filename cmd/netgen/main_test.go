package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateAndInspectRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "net.json")
	var buf bytes.Buffer
	o := options{Scenario: "fig10", Scale: 0.1}
	o.Out = out
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "\"tool\": \"netgen\"") {
		t.Errorf("output is not an envelope:\n%.200s", raw)
	}
	if err := run(&buf, options{In: out}); err != nil {
		t.Fatalf("inspect: %v", err)
	}
}

// TestInspectLegacyRawNetwork: -in still accepts the pre-envelope format
// (a bare network JSON document).
func TestInspectLegacyRawNetwork(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "net.json")
	var buf bytes.Buffer
	o := options{Scenario: "fig10", Scale: 0.1}
	o.Out = out
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	// Extract the embedded payload as the legacy format.
	var env struct {
		Data json.RawMessage `json:"data"`
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	legacy := filepath.Join(dir, "legacy.json")
	if err := os.WriteFile(legacy, env.Data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&buf, options{In: legacy}); err != nil {
		t.Fatalf("legacy inspect: %v", err)
	}
}

func TestGenerateWithoutOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{Scenario: "fig10", Scale: 0.1}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownScenario(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{Scenario: "bogus", Scale: 1}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestInspectMissingFile(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{In: "/nonexistent/net.json"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

// genEnvelope produces one generated-network envelope file for the
// inspect-path tests.
func genEnvelope(t *testing.T) string {
	t.Helper()
	out := filepath.Join(t.TempDir(), "net.json")
	var buf bytes.Buffer
	o := options{Scenario: "fig10", Scale: 0.1}
	o.Out = out
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestInspectWritesTrace pins the session fix: `-in net.json -trace
// t.jsonl` used to return before the session was even started, silently
// producing no trace. The inspect path must now record a validated trace
// and propagate Close's verdict.
func TestInspectWritesTrace(t *testing.T) {
	net := genEnvelope(t)
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	var buf bytes.Buffer
	o := options{In: net}
	o.Trace = trace
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatalf("inspect with -trace wrote no trace: %v", err)
	}
	if !strings.Contains(string(raw), "\"experiment\"") || !strings.Contains(string(raw), "\"nodes\"") {
		t.Errorf("trace missing the inspect span or node counter:\n%.300s", raw)
	}
}

// TestInspectRejectsNegativeFlags pins the config-seam fix on the inspect
// path, which used to skip flag validation entirely.
func TestInspectRejectsNegativeFlags(t *testing.T) {
	net := genEnvelope(t)
	var buf bytes.Buffer
	o := options{In: net}
	o.Workers = -1
	if err := run(&buf, o); err == nil || !strings.Contains(err.Error(), "-workers") {
		t.Fatalf("negative -workers on inspect path: %v", err)
	}
}

// TestInspectRejectsTrailingData pins the envelope fix: a concatenated
// -out file used to be inspected as its first document; now it is a hard
// error, not a legacy-format fallback.
func TestInspectRejectsTrailingData(t *testing.T) {
	net := genEnvelope(t)
	raw, err := os.ReadFile(net)
	if err != nil {
		t.Fatal(err)
	}
	doubled := filepath.Join(t.TempDir(), "doubled.json")
	if err := os.WriteFile(doubled, append(append([]byte{}, raw...), raw...), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = run(&buf, options{In: doubled})
	if err == nil {
		t.Fatal("concatenated envelope file accepted")
	}
	if !strings.Contains(err.Error(), "trailing data") {
		t.Errorf("error does not name trailing data: %v", err)
	}
}

// TestInspectRejectsForeignEnvelope: an envelope from another tool is an
// error, never reinterpreted as a legacy payload.
func TestInspectRejectsForeignEnvelope(t *testing.T) {
	path := filepath.Join(t.TempDir(), "foreign.json")
	if err := os.WriteFile(path, []byte(`{"tool": "experiment", "data": {"radius": 1}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, options{In: path}); err == nil || !strings.Contains(err.Error(), "not netgen") {
		t.Fatalf("foreign envelope: %v", err)
	}
}

// TestEnvelopeCarriesShards: -shards lands in the written envelope's
// framing, so downstream consumers can reproduce the run configuration.
func TestEnvelopeCarriesShards(t *testing.T) {
	out := filepath.Join(t.TempDir(), "net.json")
	var buf bytes.Buffer
	o := options{Scenario: "fig10", Scale: 0.1}
	o.Out = out
	o.Shards = 4
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Shards int `json:"shards"`
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	if env.Shards != 4 {
		t.Errorf("envelope shards = %d, want 4", env.Shards)
	}
}
