package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateAndInspectRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "net.json")
	var buf bytes.Buffer
	o := options{Scenario: "fig10", Scale: 0.1}
	o.Out = out
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "\"tool\": \"netgen\"") {
		t.Errorf("output is not an envelope:\n%.200s", raw)
	}
	if err := run(&buf, options{In: out}); err != nil {
		t.Fatalf("inspect: %v", err)
	}
}

// TestInspectLegacyRawNetwork: -in still accepts the pre-envelope format
// (a bare network JSON document).
func TestInspectLegacyRawNetwork(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "net.json")
	var buf bytes.Buffer
	o := options{Scenario: "fig10", Scale: 0.1}
	o.Out = out
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	// Extract the embedded payload as the legacy format.
	var env struct {
		Data json.RawMessage `json:"data"`
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	legacy := filepath.Join(dir, "legacy.json")
	if err := os.WriteFile(legacy, env.Data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&buf, options{In: legacy}); err != nil {
		t.Fatalf("legacy inspect: %v", err)
	}
}

func TestGenerateWithoutOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{Scenario: "fig10", Scale: 0.1}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownScenario(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{Scenario: "bogus", Scale: 1}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestInspectMissingFile(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{In: "/nonexistent/net.json"}); err == nil {
		t.Fatal("missing file accepted")
	}
}
