package main

import (
	"path/filepath"
	"testing"
)

func TestGenerateAndInspectRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "net.json")
	if err := run("fig10", 0.1, out, ""); err != nil {
		t.Fatal(err)
	}
	if err := run("", 0, "", out); err != nil {
		t.Fatalf("inspect: %v", err)
	}
}

func TestGenerateWithoutOutput(t *testing.T) {
	if err := run("fig10", 0.1, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownScenario(t *testing.T) {
	if err := run("bogus", 1, "", ""); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestInspectMissingFile(t *testing.T) {
	if err := run("", 0, "", "/nonexistent/net.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}
