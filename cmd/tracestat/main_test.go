package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/obs/ftdc"
)

// writeBaseline stores a one-stage baseline for the diff modes.
func writeBaseline(t *testing.T, dir, name string, ns float64, host bench.Host) string {
	t.Helper()
	b := &bench.Baseline{
		Name: name, CreatedAt: "2026-08-05T00:00:00Z",
		GoVersion: "go1.22", GOMAXPROCS: 1, Host: host,
		Stages: []bench.Stage{{Name: "ubf", WallNS: int64(ns) * 4, Ops: 4, NSPerOp: ns, BallsTested: 99}},
	}
	path := filepath.Join(dir, "BENCH_"+name+".json")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeTrace records a tiny valid trace to a file.
func writeTrace(t *testing.T, dir, name string, msgs int64) string {
	t.Helper()
	var buf bytes.Buffer
	j := obs.NewJSONL(&buf)
	j.RoundBegin(obs.StageIFF, 0)
	j.RoundEnd(obs.StageIFF, 0, obs.RoundStats{Sent: msgs, Delivered: msgs, Active: 2})
	j.Count(obs.StageIFF, obs.CtrMsgsSent, msgs)
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBaselineDiffExitContract is the gate's acceptance criterion: an
// identical baseline pair diffs clean (exit 0), an injected regression
// returns the findings sentinel (exit 1), and a cross-host pair is
// refused as a usage error (exit 2) unless overridden.
func TestBaselineDiffExitContract(t *testing.T) {
	dir := t.TempDir()
	host := bench.Host{CPUModel: "test-cpu", NumCPU: 2, OS: "linux", Arch: "amd64"}
	oldP := writeBaseline(t, dir, "old", 1000, host)
	sameP := writeBaseline(t, dir, "same", 1000, host)
	slowP := writeBaseline(t, dir, "slow", 2000, host)
	otherHostP := writeBaseline(t, dir, "other", 1000,
		bench.Host{CPUModel: "other-cpu", NumCPU: 8, OS: "linux", Arch: "arm64"})

	base := options{TolNS: 0.25, TolAllocs: 0.10, TolWall: -1}

	var out bytes.Buffer
	opts := base
	opts.Baseline, opts.Against = sameP, oldP
	if err := run(&out, opts); err != nil {
		t.Fatalf("identical pair: %v", err)
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Errorf("identical-pair report: %q", out.String())
	}

	opts = base
	opts.Baseline, opts.Against = slowP, oldP
	err := run(reset(&out), opts)
	if !errors.Is(err, errFindings) {
		t.Fatalf("injected regression: err = %v, want errFindings", err)
	}

	opts = base
	opts.Baseline, opts.Against = otherHostP, oldP
	err = run(reset(&out), opts)
	if err == nil || errors.Is(err, errFindings) {
		t.Fatalf("cross-host pair: err = %v, want a usage refusal", err)
	}
	opts.AllowCrossHost = true
	if err := run(reset(&out), opts); err != nil {
		t.Errorf("cross-host override: %v", err)
	}
}

// reset clears and returns the buffer, keeping the call sites short.
func reset(b *bytes.Buffer) *bytes.Buffer {
	b.Reset()
	return b
}

// TestTraceModesAndEnvelope covers the two trace modes: single-trace
// analysis with a JSON report envelope, and the trace-vs-trace diff's
// exit contract.
func TestTraceModesAndEnvelope(t *testing.T) {
	dir := t.TempDir()
	a := writeTrace(t, dir, "a.jsonl", 10)
	same := writeTrace(t, dir, "same.jsonl", 10)
	drifted := writeTrace(t, dir, "drifted.jsonl", 20)
	outPath := filepath.Join(dir, "report.json")

	var out bytes.Buffer
	opts := options{Trace: a, Out: outPath, TolWall: -1}
	if err := run(&out, opts); err != nil {
		t.Fatalf("single-trace mode: %v", err)
	}
	if !strings.Contains(out.String(), "no anomalies") {
		t.Errorf("report: %q", out.String())
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	env, data, err := cli.ReadEnvelope(raw)
	if err != nil {
		t.Fatal(err)
	}
	if env.Tool != "tracestat" {
		t.Errorf("envelope tool = %q", env.Tool)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "trace" || len(rep.Curves) == 0 {
		t.Errorf("envelope payload: %+v", rep)
	}

	opts = options{Trace: same, Against: a, TolWall: -1}
	if err := run(reset(&out), opts); err != nil {
		t.Errorf("identical trace diff: %v", err)
	}
	opts = options{Trace: drifted, Against: a, TolWall: -1}
	if err := run(reset(&out), opts); !errors.Is(err, errFindings) {
		t.Errorf("drifted trace diff: err = %v, want errFindings", err)
	}
}

// TestFailOnAnomaly: a non-quiescent trace passes by default and fails
// with -fail-on-anomaly.
func TestFailOnAnomaly(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	j := obs.NewJSONL(&buf)
	j.RoundBegin(obs.StageIFF, 0)
	j.RoundEnd(obs.StageIFF, 0, obs.RoundStats{Sent: 5, Delivered: 3, Active: 2})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "stuck.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run(&out, options{Trace: path, TolWall: -1}); err != nil {
		t.Fatalf("anomalous trace without -fail-on-anomaly: %v", err)
	}
	if !strings.Contains(out.String(), "non_quiescence") {
		t.Errorf("report does not surface the anomaly: %q", out.String())
	}
	err := run(reset(&out), options{Trace: path, TolWall: -1, FailOnAnomaly: true})
	if !errors.Is(err, errFindings) {
		t.Errorf("err = %v, want errFindings", err)
	}
}

// TestUsageErrors: ambiguous or empty invocations are usage errors, never
// the findings sentinel.
func TestUsageErrors(t *testing.T) {
	var out bytes.Buffer
	for _, opts := range []options{
		{},
		{Trace: "x.jsonl", Baseline: "y.json"},
		{Trace: "/nonexistent/trace.jsonl"},
		{Baseline: "/nonexistent/BENCH.json"},
	} {
		err := run(&out, opts)
		if err == nil || errors.Is(err, errFindings) {
			t.Errorf("opts %+v: err = %v, want usage error", opts, err)
		}
	}
}

// writeFTDC records a small capture ring: a Metrics sink fed a known
// stream, sampled start and stop.
func writeFTDC(t *testing.T, dir string, msgs int64) string {
	t.Helper()
	path := filepath.Join(dir, "cap")
	ring, err := ftdc.OpenRing(path, ftdc.RingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var m obs.Metrics
	s := ftdc.StartSampler(&m, ring, time.Hour) // ticks never fire; start+stop samples only
	m.Count(obs.StageIFF, obs.CtrMsgsSent, msgs)
	m.StageEnd(obs.StageIFF, "", 1_000_000)
	m.StageEnd(obs.StageIFF, "", 2_000_000)
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFTDCModeAndGates: -ftdc decodes a ring, renders counters and
// latency quantiles, honors -min-samples / -require-p99 as exit-1
// gates, and diffs two captures through the trace tolerances.
func TestFTDCModeAndGates(t *testing.T) {
	dir := t.TempDir()
	capA := writeFTDC(t, filepath.Join(dir, "a"), 100)

	var out bytes.Buffer
	outPath := filepath.Join(dir, "report.json")
	if err := run(&out, options{FTDC: capA, MinSamples: 2, RequireP99: "iff", Out: outPath}); err != nil {
		t.Fatalf("ftdc analyze: %v", err)
	}
	for _, want := range []string{"iff/msgs_sent", "2 samples", "p99"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report lacks %q:\n%s", want, out.String())
		}
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	env, data, err := cli.ReadEnvelope(raw)
	if err != nil || env.Tool != "tracestat" {
		t.Fatalf("envelope: %v (tool %q)", err, env.Tool)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "ftdc" || rep.FTDC == nil || rep.FTDC.Counters["iff/msgs_sent"] != 100 {
		t.Fatalf("ftdc report payload wrong: %+v", rep.FTDC)
	}
	if rep.FTDC.Latencies["iff"].Count != 2 || rep.FTDC.Latencies["iff"].P99NS <= 0 {
		t.Fatalf("latency payload wrong: %+v", rep.FTDC.Latencies)
	}

	// Unmet gates are findings (exit 1), not usage errors.
	if err := run(reset(&out), options{FTDC: capA, MinSamples: 99}); !errors.Is(err, errFindings) {
		t.Errorf("min-samples gate: err = %v, want errFindings", err)
	}
	if err := run(reset(&out), options{FTDC: capA, RequireP99: "serve"}); !errors.Is(err, errFindings) {
		t.Errorf("require-p99 gate: err = %v, want errFindings", err)
	}

	// Diff: identical counters pass, drifted counters regress.
	capSame := writeFTDC(t, filepath.Join(dir, "same"), 100)
	if err := run(reset(&out), options{FTDC: capA, Against: capSame, TolWall: -1}); err != nil {
		t.Fatalf("identical captures diffed dirty: %v", err)
	}
	capDrift := writeFTDC(t, filepath.Join(dir, "drift"), 150)
	if err := run(reset(&out), options{FTDC: capDrift, Against: capA, TolWall: -1}); !errors.Is(err, errFindings) {
		t.Errorf("drifted capture: err = %v, want errFindings", err)
	}
	// -ftdc is exclusive with the other inputs.
	if err := run(reset(&out), options{FTDC: capA, Trace: "x.jsonl"}); err == nil || errors.Is(err, errFindings) {
		t.Errorf("ftdc+trace: err = %v, want usage error", err)
	}
}
