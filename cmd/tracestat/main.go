// Command tracestat analyzes flight-recorder traces and benchmark
// baselines: convergence curves, anomaly detection, and tolerance-gated
// diffs (internal/obs/analyze).
//
// Usage:
//
//	tracestat -trace run.jsonl                     # validate + curves + anomalies
//	tracestat -trace new.jsonl -against old.jsonl  # diff two traces
//	tracestat -baseline BENCH_A.json -against BENCH_B.json  # diff two baselines
//	tracestat -baseline BENCH_A.json               # summarize one baseline
//	tracestat -ftdc capdir                         # decode an FTDC capture ring
//	tracestat -ftdc new_dir -against old_dir       # diff two captures
//
// -ftdc decodes the binary delta-encoded metrics ring that boundaryd and
// the CLIs write under their -ftdc flag: capture stats, the final
// sample's counter totals, and per-stage latency quantiles.
// -min-samples and -require-p99 turn the single-directory mode into a CI
// gate (`make ftdc-smoke`).
//
// Exit status: 0 when clean, 1 when the diff found a regression (or, with
// -fail-on-anomaly, when the trace shows an anomaly), 2 on usage or I/O
// errors. -out writes the full report as a JSON envelope (internal/cli
// framing, tool "tracestat"). Baselines recorded on different hosts are
// refused unless -allow-cross-host is set.
//
// This command reads traces, so it registers its own flags instead of the
// shared cli.Common block (whose -trace means "write a trace").
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/obs/ftdc"
)

// options collects one invocation's parameters.
type options struct {
	Trace    string
	Baseline string
	Against  string
	Out      string

	FTDC       string
	MinSamples int
	RequireP99 string

	TolCount float64
	TolRound int
	TolWall  float64

	TolNS     float64
	TolAllocs float64
	TolWork   float64

	AllowCrossHost bool
	FailOnAnomaly  bool
}

func registerFlags(fs *flag.FlagSet, opts *options) {
	fs.StringVar(&opts.Trace, "trace", "", "JSONL flight-recorder trace to analyze (input)")
	fs.StringVar(&opts.Baseline, "baseline", "", "BENCH_*.json baseline to analyze (input)")
	fs.StringVar(&opts.Against, "against", "", "second trace or baseline to diff against (same kind as the first input)")
	fs.StringVar(&opts.Out, "out", "", "write the report as a JSON envelope to this path")
	fs.StringVar(&opts.FTDC, "ftdc", "", "FTDC capture directory to analyze (input; -against diffs a second directory)")
	fs.IntVar(&opts.MinSamples, "min-samples", 0, "ftdc: fail unless the capture holds at least this many samples")
	fs.StringVar(&opts.RequireP99, "require-p99", "", "ftdc: comma-separated stages whose final p99 latency must be nonzero")
	fs.Float64Var(&opts.TolCount, "tol-count", 0, "trace diff: allowed fractional drift per counter total (0 = exact)")
	fs.IntVar(&opts.TolRound, "tol-rounds", 0, "trace diff: allowed absolute drift per stage round count")
	fs.Float64Var(&opts.TolWall, "tol-wall", -1, "trace diff: allowed fractional wall-time drift per stage (negative = ignore wall time)")
	fs.Float64Var(&opts.TolNS, "tol-ns", 0.25, "baseline diff: allowed fractional ns/op increase per stage")
	fs.Float64Var(&opts.TolAllocs, "tol-allocs", 0.10, "baseline diff: allowed fractional allocs/op increase per stage")
	fs.Float64Var(&opts.TolWork, "tol-work", 0, "baseline diff: allowed fractional drift of the deterministic work counters")
	fs.BoolVar(&opts.AllowCrossHost, "allow-cross-host", false, "permit diffing baselines recorded on different hosts")
	fs.BoolVar(&opts.FailOnAnomaly, "fail-on-anomaly", false, "exit nonzero when a single-trace analysis finds anomalies")
}

// errFindings marks a completed analysis whose verdict is "regressed":
// main exits 1 instead of the usage/I/O status 2.
var errFindings = errors.New("regression detected")

func main() {
	var opts options
	registerFlags(flag.CommandLine, &opts)
	flag.Parse()

	err := run(os.Stdout, opts)
	switch {
	case err == nil:
	case errors.Is(err, errFindings):
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(2)
	}
}

// report is the envelope payload: whichever sections the mode produced.
type report struct {
	Mode      string            `json:"mode"`
	Curves    []analyze.Curve   `json:"curves,omitempty"`
	Anomalies []analyze.Anomaly `json:"anomalies,omitempty"`
	Findings  []analyze.Finding `json:"findings,omitempty"`
	Stages    []bench.Stage     `json:"stages,omitempty"`
	FTDC      *ftdcReport       `json:"ftdc,omitempty"`
}

// ftdcReport is the -ftdc analysis payload: capture stats plus the final
// sample's counter totals and latency quantiles.
type ftdcReport struct {
	ftdc.DirStats
	Counters  map[string]int64            `json:"counters,omitempty"`
	Latencies map[string]obs.LatencyStats `json:"latencies,omitempty"`
}

func run(w io.Writer, opts options) error {
	inputs := 0
	for _, set := range []bool{opts.Trace != "", opts.Baseline != "", opts.FTDC != ""} {
		if set {
			inputs++
		}
	}
	switch {
	case inputs > 1:
		return fmt.Errorf("pass exactly one of -trace, -baseline, -ftdc")
	case opts.FTDC != "" && opts.Against == "":
		return analyzeFTDC(w, opts)
	case opts.FTDC != "":
		return diffFTDC(w, opts)
	case opts.Trace != "" && opts.Against == "":
		return analyzeTrace(w, opts)
	case opts.Trace != "":
		return diffTraces(w, opts)
	case opts.Baseline != "" && opts.Against == "":
		return summarizeBaseline(w, opts)
	case opts.Baseline != "":
		return diffBaselines(w, opts)
	default:
		return fmt.Errorf("nothing to do: pass -trace, -baseline or -ftdc (see -h)")
	}
}

func loadTrace(path string) (*analyze.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := analyze.Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

// writeReport emits the optional JSON envelope.
func writeReport(opts options, rep report) error {
	if opts.Out == "" {
		return nil
	}
	env := cli.Envelope{Tool: "tracestat", Params: map[string]any{
		"trace": opts.Trace, "baseline": opts.Baseline, "against": opts.Against,
	}, Data: rep}
	return cli.WriteEnvelope(opts.Out, env)
}

// analyzeTrace is the single-trace mode: validate, print convergence
// curves and anomalies.
func analyzeTrace(w io.Writer, opts options) error {
	tr, err := loadTrace(opts.Trace)
	if err != nil {
		return err
	}
	curves := analyze.Convergence(tr.Events)
	anomalies := analyze.FindAnomalies(tr)

	fmt.Fprintf(w, "%s: %d events, %d stages with rounds, %d transitions\n",
		opts.Trace, tr.Summary.Events, len(tr.Summary.Rounds), totalTransitions(tr.Summary))
	for _, c := range curves {
		fmt.Fprintf(w, "\nconvergence %s (%d rounds):\n", c.Stage, len(c.Points))
		fmt.Fprintf(w, "  %7s %9s %10s %9s %8s %8s %7s\n", "round", "sent", "delivered", "dropped", "dup", "delayed", "active")
		for _, p := range c.Points {
			fmt.Fprintf(w, "  %7d %9d %10d %9d %8d %8d %7d\n", p.Round,
				p.Stats.Sent, p.Stats.Delivered, p.Stats.Dropped,
				p.Stats.Duplicated, p.Stats.Delayed, p.Stats.Active)
		}
	}
	if len(anomalies) == 0 {
		fmt.Fprintf(w, "\nno anomalies\n")
	} else {
		fmt.Fprintf(w, "\nanomalies (%d):\n", len(anomalies))
		for _, a := range anomalies {
			fmt.Fprintf(w, "  [%s] %s\n", a.Kind, a.Detail)
		}
	}
	if err := writeReport(opts, report{Mode: "trace", Curves: curves, Anomalies: anomalies}); err != nil {
		return err
	}
	if opts.FailOnAnomaly && len(anomalies) > 0 {
		return fmt.Errorf("%w: %d anomaly(ies)", errFindings, len(anomalies))
	}
	return nil
}

func totalTransitions(sum obs.TraceSummary) int {
	n := 0
	for _, c := range sum.Transitions {
		n += c
	}
	return n
}

// analyzeFTDC decodes a capture directory: capture stats, the final
// sample's counter totals, and per-stage latency quantiles. -min-samples
// and -require-p99 turn it into a CI gate (exit 1 when unmet).
func analyzeFTDC(w io.Writer, opts options) error {
	samples, stats, err := ftdc.ReadDir(opts.FTDC)
	if err != nil {
		return err
	}
	final := samples[len(samples)-1]
	counters := ftdc.CounterTotals(final)
	fmt.Fprintf(w, "%s: %d samples in %d segments, %d schema changes\n",
		opts.FTDC, stats.Samples, stats.Segments, stats.SchemaChanges)

	keys := make([]string, 0, len(counters))
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) > 0 {
		fmt.Fprintf(w, "\ncounters (final sample):\n")
		for _, k := range keys {
			fmt.Fprintf(w, "  %-36s %14d\n", k, counters[k])
		}
	}
	lats := make(map[string]obs.LatencyStats)
	stages := ftdc.LatencyStages(final)
	if len(stages) > 0 {
		fmt.Fprintf(w, "\nlatency (final sample):\n")
		fmt.Fprintf(w, "  %-14s %8s %12s %12s %12s %12s\n", "stage", "spans", "p50", "p95", "p99", "max")
		for _, st := range stages {
			stat := ftdc.Latency(final, st).Stats()
			lats[st] = stat
			fmt.Fprintf(w, "  %-14s %8d %12s %12s %12s %12s\n", st, stat.Count,
				time.Duration(stat.P50NS), time.Duration(stat.P95NS),
				time.Duration(stat.P99NS), time.Duration(stat.MaxNS))
		}
	}
	if err := writeReport(opts, report{Mode: "ftdc", FTDC: &ftdcReport{DirStats: stats, Counters: counters, Latencies: lats}}); err != nil {
		return err
	}

	// Gates for make ftdc-smoke.
	if opts.MinSamples > 0 && stats.Samples < opts.MinSamples {
		return fmt.Errorf("%w: %d samples, want >= %d", errFindings, stats.Samples, opts.MinSamples)
	}
	if opts.RequireP99 != "" {
		for _, st := range strings.Split(opts.RequireP99, ",") {
			st = strings.TrimSpace(st)
			if st == "" {
				continue
			}
			if stat, ok := lats[st]; !ok || stat.P99NS <= 0 {
				return fmt.Errorf("%w: stage %q has no p99 latency in the final sample", errFindings, st)
			}
		}
	}
	return nil
}

// diffFTDC compares -against (old capture) to -ftdc (new capture) by
// projecting both final samples onto trace summaries and reusing the
// trace diff tolerances.
func diffFTDC(w io.Writer, opts options) error {
	oldS, _, err := ftdc.ReadDir(opts.Against)
	if err != nil {
		return err
	}
	newS, _, err := ftdc.ReadDir(opts.FTDC)
	if err != nil {
		return err
	}
	rep := analyze.DiffTraces(
		ftdc.Summary(oldS[len(oldS)-1]),
		ftdc.Summary(newS[len(newS)-1]),
		analyze.Tolerances{
			CounterFrac: opts.TolCount,
			RoundSlack:  opts.TolRound,
			WallFrac:    opts.TolWall,
		})
	return finishDiff(w, opts, "ftdc-diff", rep,
		fmt.Sprintf("ftdc diff %s -> %s", opts.Against, opts.FTDC))
}

// diffTraces compares -against (old) to -trace (new).
func diffTraces(w io.Writer, opts options) error {
	oldTr, err := loadTrace(opts.Against)
	if err != nil {
		return err
	}
	newTr, err := loadTrace(opts.Trace)
	if err != nil {
		return err
	}
	rep := analyze.DiffTraces(oldTr.Summary, newTr.Summary, analyze.Tolerances{
		CounterFrac: opts.TolCount,
		RoundSlack:  opts.TolRound,
		WallFrac:    opts.TolWall,
	})
	return finishDiff(w, opts, "trace-diff", rep,
		fmt.Sprintf("trace diff %s -> %s", opts.Against, opts.Trace))
}

// diffBaselines compares -against (old) to -baseline (new).
func diffBaselines(w io.Writer, opts options) error {
	oldB, err := bench.Load(opts.Against)
	if err != nil {
		return err
	}
	newB, err := bench.Load(opts.Baseline)
	if err != nil {
		return err
	}
	rep, err := analyze.DiffBaselines(oldB, newB, analyze.BenchTolerances{
		NSFrac:         opts.TolNS,
		AllocFrac:      opts.TolAllocs,
		WorkFrac:       opts.TolWork,
		AllowCrossHost: opts.AllowCrossHost,
	})
	if err != nil {
		return err
	}
	return finishDiff(w, opts, "bench-diff", rep,
		fmt.Sprintf("baseline diff %s (%s) -> %s (%s)", opts.Against, oldB.Name, opts.Baseline, newB.Name))
}

// finishDiff renders a diff report, writes the envelope, and converts
// regressions into the exit-1 sentinel.
func finishDiff(w io.Writer, opts options, mode string, rep analyze.Report, header string) error {
	fmt.Fprintln(w, header)
	for _, f := range rep.Findings {
		mark := "ok  "
		if f.Regressed {
			mark = "FAIL"
		}
		line := fmt.Sprintf("  %s %-32s old=%.6g new=%.6g delta=%+.6g (allowed %.6g)",
			mark, f.Metric, f.Old, f.New, f.Delta, f.Allowed)
		if f.Note != "" {
			line += " — " + f.Note
		}
		fmt.Fprintln(w, line)
	}
	regs := rep.Regressions()
	if len(regs) == 0 {
		fmt.Fprintf(w, "no regressions (%d metrics compared)\n", len(rep.Findings))
	} else {
		fmt.Fprintf(w, "%d regression(s) out of %d metrics\n", len(regs), len(rep.Findings))
	}
	if err := writeReport(opts, report{Mode: mode, Findings: rep.Findings}); err != nil {
		return err
	}
	if len(regs) > 0 {
		return fmt.Errorf("%w: %d metric(s) out of tolerance", errFindings, len(regs))
	}
	return nil
}

// summarizeBaseline prints one baseline's stages.
func summarizeBaseline(w io.Writer, opts options) error {
	b, err := bench.Load(opts.Baseline)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: %s (%s, GOMAXPROCS=%d, host %s, scale %g)\n",
		opts.Baseline, b.Name, b.GoVersion, b.GOMAXPROCS, b.Host, b.Scale)
	for _, s := range b.Stages {
		fmt.Fprintf(w, "  %-36s %12.0f ns/op  ops=%d", s.Name, s.NSPerOp, s.Ops)
		if s.Allocs != 0 {
			fmt.Fprintf(w, "  allocs/op=%d", s.Allocs)
		}
		fmt.Fprintln(w)
	}
	return writeReport(opts, report{Mode: "baseline", Stages: b.Stages})
}
