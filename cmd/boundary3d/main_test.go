package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestPickScenario(t *testing.T) {
	for _, name := range []string{"fig1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig10-sphere"} {
		if _, err := pickScenario(name); err != nil {
			t.Errorf("pickScenario(%q): %v", name, err)
		}
	}
	if _, err := pickScenario("bogus"); err == nil {
		t.Error("bogus scenario accepted")
	}
}

func TestRunEndToEndWithArtifacts(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "out")
	if err := run("fig10", 0.1, 4, 0.2, prefix, false, true); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{"-network.json", "-boundary.json", "-surface0.off", "-surface0.obj"} {
		info, err := os.Stat(prefix + suffix)
		if err != nil {
			t.Errorf("artifact %s missing: %v", suffix, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("artifact %s empty", suffix)
		}
	}
}

func TestRunTrueCoordsNoArtifacts(t *testing.T) {
	if err := run("fig10", 0, 4, 0.2, "", true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownScenario(t *testing.T) {
	if err := run("nope", 0, 3, 1, "", false, false); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
