package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cli"
	"repro/internal/obs"
)

func TestPickScenario(t *testing.T) {
	for _, name := range []string{"fig1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig10-sphere"} {
		if _, err := pickScenario(name); err != nil {
			t.Errorf("pickScenario(%q): %v", name, err)
		}
	}
	if _, err := pickScenario("bogus"); err == nil {
		t.Error("bogus scenario accepted")
	}
}

func TestRunEndToEndWithArtifacts(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "out")
	var buf bytes.Buffer
	o := options{Scenario: "fig10", ErrorFrac: 0.1, K: 4, Scale: 0.2, Artifacts: prefix, Refine: true}
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{"-network.json", "-boundary.json", "-surface0.off", "-surface0.obj"} {
		info, err := os.Stat(prefix + suffix)
		if err != nil {
			t.Errorf("artifact %s missing: %v", suffix, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("artifact %s empty", suffix)
		}
	}
}

func TestRunTrueCoordsNoArtifacts(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{Scenario: "fig10", K: 4, Scale: 0.2, TrueCoords: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownScenario(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{Scenario: "nope", K: 3, Scale: 1}); err != nil {
		if !strings.Contains(err.Error(), "unknown scenario") {
			t.Fatalf("wrong error: %v", err)
		}
		return
	}
	t.Fatal("unknown scenario accepted")
}

// TestRunTraceAndSummaryEnvelope: -trace writes a schema-valid JSONL with
// detection and mesh stage spans, and -out writes the summary envelope.
func TestRunTraceAndSummaryEnvelope(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	outPath := filepath.Join(dir, "summary.json")
	var buf bytes.Buffer
	o := options{Scenario: "fig10", ErrorFrac: 0.1, K: 4, Scale: 0.2}
	o.Trace = trace
	o.Out = outPath
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sum, err := obs.ValidateTrace(f)
	if err != nil {
		t.Fatalf("trace failed validation: %v", err)
	}
	for _, s := range []obs.Stage{obs.StageDetect, obs.StageUBF, obs.StageSurface, obs.StageTriangulate} {
		if sum.Spans[s] == 0 {
			t.Errorf("no %s spans in trace", s)
		}
	}

	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	env, data, err := cli.ReadEnvelope(raw)
	if err != nil {
		t.Fatalf("summary envelope: %v", err)
	}
	if env.Tool != "boundary3d" {
		t.Errorf("envelope tool %q, want boundary3d", env.Tool)
	}
	if !strings.Contains(string(data), "\"scenario\"") {
		t.Errorf("summary payload wrong: %s", data)
	}
}
