// Command boundary3d runs the full pipeline end to end on one scenario:
// deploy → range → detect boundary nodes → group → build triangular
// boundary surfaces → export. It prints a summary and optionally writes the
// network (JSON), the boundary set (JSON), and one OFF + OBJ mesh per
// boundary surface — the reproduction's analogue of the paper's rendered
// figures.
//
// Usage:
//
//	boundary3d -scenario fig10 -error 0.2 -k 3 -artifacts out/sphere
//	boundary3d -scenario fig6 -out summary.json -trace trace.jsonl
//
// The shared flags (-seed, -workers, -out, -trace, -pprof) follow the
// repository-wide convention (see internal/cli): -out writes the run
// summary as a JSON envelope (the geometry artifacts keep their own
// -artifacts prefix), -trace records every pipeline stage event as JSONL
// — including the flight recorder's round and transition events, readable
// with cmd/tracestat — and -pprof captures CPU/heap profiles.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/export"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/netgen"
	"repro/internal/ranging"
	"repro/internal/routing"
)

// options collects one invocation's parameters: the scenario selection
// plus the repository-wide shared flag block.
type options struct {
	Scenario   string
	ErrorFrac  float64
	K          int
	Scale      float64
	Artifacts  string
	TrueCoords bool
	Refine     bool
	cli.Common
}

func main() {
	var opts options
	flag.StringVar(&opts.Scenario, "scenario", "fig10", "deployment: fig1|fig6|fig7|fig8|fig9|fig10")
	flag.Float64Var(&opts.ErrorFrac, "error", 0, "distance measurement error as a fraction of the radio range (0..1)")
	flag.IntVar(&opts.K, "k", 3, "landmark spacing (mesh fineness)")
	flag.Float64Var(&opts.Scale, "scale", 1.0, "node-count scale factor")
	flag.StringVar(&opts.Artifacts, "artifacts", "", "output path prefix for JSON/OFF/OBJ geometry artifacts (optional)")
	flag.BoolVar(&opts.TrueCoords, "true-coords", false, "skip MDS and use ground-truth coordinates")
	flag.BoolVar(&opts.Refine, "refine", false, "export cell-centroid-refined landmark positions")
	opts.Common.Register(flag.CommandLine)
	flag.Parse()

	if err := run(os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, "boundary3d:", err)
		os.Exit(1)
	}
}

func pickScenario(name string) (eval.Scenario, error) {
	for _, sc := range eval.AllScenarios() {
		if sc.Name == name || strings.HasPrefix(sc.Name, name+"-") || strings.HasPrefix(sc.Name, name) {
			return sc, nil
		}
	}
	return eval.Scenario{}, fmt.Errorf("unknown scenario %q (try fig1, fig6..fig10)", name)
}

// summary is the -out envelope payload: the run's detection quality and
// per-surface mesh/routing results.
type summary struct {
	Scenario string       `json:"scenario"`
	Stats    netgen.Stats `json:"stats"`
	Error    float64      `json:"error"`
	Found    int          `json:"found"`
	Correct  int          `json:"correct"`
	Mistaken int          `json:"mistaken"`
	Missing  int          `json:"missing"`
	Groups   int          `json:"groups"`
	Surfaces []surfaceRow `json:"surfaces"`
}

type surfaceRow struct {
	Nodes     int           `json:"nodes"`
	Landmarks int           `json:"landmarks"`
	Quality   mesh.Quality  `json:"quality"`
	Routing   routing.Stats `json:"routing"`
}

func run(w io.Writer, opts options) error {
	sc, err := pickScenario(opts.Scenario)
	if err != nil {
		return err
	}
	sc = sc.Scaled(opts.Scale)
	if opts.Seed != 0 {
		sc.Seed = opts.Seed
	}
	sess, err := opts.Common.Start()
	if err != nil {
		return err
	}
	closed := false
	defer func() {
		if !closed {
			sess.Close()
		}
	}()

	fmt.Fprintf(w, "deploying %s (%s): %d surface + %d interior nodes...\n",
		sc.Name, sc.Figure, sc.SurfaceNodes, sc.InteriorNodes)
	net, err := sc.Generate()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "network: %v\n", net.Stats())

	ctx := context.Background()
	cfg := opts.Common.DetectConfig()
	var det *core.Result
	if opts.TrueCoords {
		cfg.Coords = core.CoordsTrue
		det, err = core.DetectContext(ctx, sess.Obs, net, nil, cfg)
	} else {
		meas := net.Measure(ranging.ForFraction(opts.ErrorFrac), sc.Seed*7)
		fmt.Fprintf(w, "ranging: %s\n", meas.Model.Name())
		det, err = core.DetectContext(ctx, sess.Obs, net, meas, cfg)
	}
	if err != nil {
		return err
	}

	truth := net.TrueBoundary()
	sum := summary{Scenario: sc.Name, Stats: net.Stats(), Error: opts.ErrorFrac}
	for i := range truth {
		switch {
		case det.Boundary[i] && truth[i]:
			sum.Correct++
		case det.Boundary[i]:
			sum.Mistaken++
		case truth[i]:
			sum.Missing++
		}
	}
	sum.Found = sum.Correct + sum.Mistaken
	sum.Groups = len(det.Groups)
	fmt.Fprintf(w, "boundary: found=%d correct=%d mistaken=%d missing=%d groups=%d\n",
		sum.Found, sum.Correct, sum.Mistaken, sum.Missing, sum.Groups)

	surfaces, err := mesh.BuildAllContext(ctx, sess.Obs, net.G, det.Groups, mesh.Config{K: opts.K, Workers: opts.Workers})
	if err != nil {
		return err
	}
	for si, s := range surfaces {
		fmt.Fprintf(w, "surface %d: %d boundary nodes, %d landmarks, %v\n",
			si, len(s.Group), len(s.Landmarks.IDs), s.Quality)
		row := surfaceRow{Nodes: len(s.Group), Landmarks: len(s.Landmarks.IDs), Quality: s.Quality}
		if len(s.Landmarks.IDs) >= 2 {
			overlay := routing.NewOverlay(s, func(n int) geom.Vec3 { return net.Nodes[n].Pos })
			stats, err := overlay.Experiment(200, sc.Seed)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  greedy routing: delivery %.1f%%, stretch %.2f\n",
				100*stats.SuccessRate, stats.AvgStretch)
			row.Routing = stats
		}
		sum.Surfaces = append(sum.Surfaces, row)
	}

	if opts.Artifacts != "" {
		if err := writeArtifacts(opts.Artifacts, net, det, surfaces, opts.Refine); err != nil {
			return err
		}
		fmt.Fprintf(w, "artifacts written under %s*\n", opts.Artifacts)
	}
	if opts.Out != "" {
		env := opts.Common.NewEnvelope("boundary3d", map[string]any{
			"scenario": opts.Scenario, "error": opts.ErrorFrac, "k": opts.K,
			"scale": opts.Scale, "true_coords": opts.TrueCoords,
		}, sum)
		if err := cli.WriteEnvelope(opts.Out, env); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote summary envelope to %s\n", opts.Out)
	}

	closed = true
	if err := sess.Close(); err != nil {
		return err
	}
	if opts.Trace != "" {
		fmt.Fprintf(w, "trace: %d events -> %s\n", sess.Summary.Events, opts.Trace)
	}
	return nil
}

// writeArtifacts stores the network, detection result, and one OFF + OBJ
// mesh per surface under the given path prefix.
func writeArtifacts(prefix string, net *netgen.Network, det *core.Result, surfaces []*mesh.Surface, refine bool) error {
	writeFile := func(path string, write func(f *os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := writeFile(prefix+"-network.json", func(f *os.File) error {
		return export.WriteNetworkJSON(f, net)
	}); err != nil {
		return err
	}
	if err := writeFile(prefix+"-boundary.json", func(f *os.File) error {
		return export.WriteDetectionJSON(f, det.Boundary, det.Groups)
	}); err != nil {
		return err
	}
	for si, s := range surfaces {
		position := func(n int) geom.Vec3 { return net.Nodes[n].Pos }
		if refine {
			refined := mesh.RefinedPositions(s, position, 0.7)
			position = func(n int) geom.Vec3 { return refined[n] }
		}
		verts, edges, faces := export.SurfaceGeometryWith(s, position)
		if err := writeFile(fmt.Sprintf("%s-surface%d.off", prefix, si), func(f *os.File) error {
			return export.WriteOFF(f, verts, faces)
		}); err != nil {
			return err
		}
		if err := writeFile(fmt.Sprintf("%s-surface%d.obj", prefix, si), func(f *os.File) error {
			return export.WriteOBJ(f, verts, edges, faces)
		}); err != nil {
			return err
		}
	}
	return nil
}
