// Command boundary3d runs the full pipeline end to end on one scenario:
// deploy → range → detect boundary nodes → group → build triangular
// boundary surfaces → export. It prints a summary and optionally writes the
// network (JSON), the boundary set (JSON), and one OFF + OBJ mesh per
// boundary surface — the reproduction's analogue of the paper's rendered
// figures.
//
// Usage:
//
//	boundary3d -scenario fig10 -error 0.2 -k 3 -out out/sphere
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/export"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/netgen"
	"repro/internal/ranging"
	"repro/internal/routing"
)

func main() {
	scenario := flag.String("scenario", "fig10", "deployment: fig1|fig6|fig7|fig8|fig9|fig10")
	errorFrac := flag.Float64("error", 0, "distance measurement error as a fraction of the radio range (0..1)")
	k := flag.Int("k", 3, "landmark spacing (mesh fineness)")
	scale := flag.Float64("scale", 1.0, "node-count scale factor")
	outPrefix := flag.String("out", "", "output path prefix for JSON/OFF/OBJ artifacts (optional)")
	trueCoords := flag.Bool("true-coords", false, "skip MDS and use ground-truth coordinates")
	refine := flag.Bool("refine", false, "export cell-centroid-refined landmark positions")
	flag.Parse()

	if err := run(*scenario, *errorFrac, *k, *scale, *outPrefix, *trueCoords, *refine); err != nil {
		fmt.Fprintln(os.Stderr, "boundary3d:", err)
		os.Exit(1)
	}
}

func pickScenario(name string) (eval.Scenario, error) {
	for _, sc := range eval.AllScenarios() {
		if sc.Name == name || strings.HasPrefix(sc.Name, name+"-") || strings.HasPrefix(sc.Name, name) {
			return sc, nil
		}
	}
	return eval.Scenario{}, fmt.Errorf("unknown scenario %q (try fig1, fig6..fig10)", name)
}

func run(scenario string, errorFrac float64, k int, scale float64, outPrefix string, trueCoords, refine bool) error {
	sc, err := pickScenario(scenario)
	if err != nil {
		return err
	}
	sc = sc.Scaled(scale)
	fmt.Printf("deploying %s (%s): %d surface + %d interior nodes...\n",
		sc.Name, sc.Figure, sc.SurfaceNodes, sc.InteriorNodes)
	net, err := sc.Generate()
	if err != nil {
		return err
	}
	fmt.Printf("network: %v\n", net.Stats())

	cfg := core.Config{}
	var det *core.Result
	if trueCoords {
		cfg.Coords = core.CoordsTrue
		det, err = core.Detect(net, nil, cfg)
	} else {
		meas := net.Measure(ranging.ForFraction(errorFrac), sc.Seed*7)
		fmt.Printf("ranging: %s\n", meas.Model.Name())
		det, err = core.Detect(net, meas, cfg)
	}
	if err != nil {
		return err
	}

	truth := net.TrueBoundary()
	correct, mistaken, missing := 0, 0, 0
	for i := range truth {
		switch {
		case det.Boundary[i] && truth[i]:
			correct++
		case det.Boundary[i]:
			mistaken++
		case truth[i]:
			missing++
		}
	}
	fmt.Printf("boundary: found=%d correct=%d mistaken=%d missing=%d groups=%d\n",
		correct+mistaken, correct, mistaken, missing, len(det.Groups))

	surfaces, err := mesh.BuildAll(net.G, det.Groups, mesh.Config{K: k})
	if err != nil {
		return err
	}
	for si, s := range surfaces {
		fmt.Printf("surface %d: %d boundary nodes, %d landmarks, %v\n",
			si, len(s.Group), len(s.Landmarks.IDs), s.Quality)
		if len(s.Landmarks.IDs) >= 2 {
			overlay := routing.NewOverlay(s, func(n int) geom.Vec3 { return net.Nodes[n].Pos })
			stats, err := overlay.Experiment(200, sc.Seed)
			if err != nil {
				return err
			}
			fmt.Printf("  greedy routing: delivery %.1f%%, stretch %.2f\n",
				100*stats.SuccessRate, stats.AvgStretch)
		}
	}

	if outPrefix == "" {
		return nil
	}
	if err := writeArtifacts(outPrefix, net, det, surfaces, refine); err != nil {
		return err
	}
	fmt.Printf("artifacts written under %s*\n", outPrefix)
	return nil
}

// writeArtifacts stores the network, detection result, and one OFF + OBJ
// mesh per surface under the given path prefix.
func writeArtifacts(prefix string, net *netgen.Network, det *core.Result, surfaces []*mesh.Surface, refine bool) error {
	writeFile := func(path string, write func(f *os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := writeFile(prefix+"-network.json", func(f *os.File) error {
		return export.WriteNetworkJSON(f, net)
	}); err != nil {
		return err
	}
	if err := writeFile(prefix+"-boundary.json", func(f *os.File) error {
		return export.WriteDetectionJSON(f, det.Boundary, det.Groups)
	}); err != nil {
		return err
	}
	for si, s := range surfaces {
		position := func(n int) geom.Vec3 { return net.Nodes[n].Pos }
		if refine {
			refined := mesh.RefinedPositions(s, position, 0.7)
			position = func(n int) geom.Vec3 { return refined[n] }
		}
		verts, edges, faces := export.SurfaceGeometryWith(s, position)
		if err := writeFile(fmt.Sprintf("%s-surface%d.off", prefix, si), func(f *os.File) error {
			return export.WriteOFF(f, verts, faces)
		}); err != nil {
			return err
		}
		if err := writeFile(fmt.Sprintf("%s-surface%d.obj", prefix, si), func(f *os.File) error {
			return export.WriteOBJ(f, verts, edges, faces)
		}); err != nil {
			return err
		}
	}
	return nil
}
